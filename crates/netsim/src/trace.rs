//! Structured event tracing: the observability layer of the simulator.
//!
//! The trace is a bounded ring buffer of typed [`TraceEvent`] rows covering
//! the engine (message send/deliver/loss, timer arm/fire/cancel) and the
//! protocols built on top (petitions, parts, confirms, selections,
//! retransmissions, watchdogs, pipes — emitted by the overlay crate through
//! [`crate::engine::Context::trace_event`]). It is disabled by default and
//! costs exactly one branch per would-be event when off; tests enable it to
//! assert that two runs with the same seed produce identical histories, and
//! the `psim trace` command exports it as deterministic JSONL.
//!
//! Span-style begin/end pairs ([`TraceEventKind::SpanBegin`] /
//! [`TraceEventKind::SpanEnd`]) let consumers reconstruct per-transfer and
//! per-selection timelines with durations; [`Trace::spans`] does the
//! pairing.

use std::collections::VecDeque;
use std::fmt::{self, Write as _};

use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// What kind of activity a span covers (used to pair begin/end events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One file transfer, keyed by its transfer id.
    Transfer,
    /// One selection decision and the work it placed.
    Selection,
    /// One task execution.
    Task,
}

impl SpanKind {
    /// Stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Transfer => "transfer",
            SpanKind::Selection => "selection",
            SpanKind::Task => "task",
        }
    }
}

/// A typed trace event.
///
/// Engine events are emitted by `netsim` itself; protocol events use only
/// primitive fields (`u128` ids, node ids, indices) so this crate stays
/// ignorant of the overlay types that produce them.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A message left this node for `to`.
    MessageSent {
        /// Destination host.
        to: NodeId,
        /// Payload kind label.
        msg: &'static str,
        /// Wire size in bytes.
        bytes: u64,
        /// When the transport starts transmitting (queueing excluded).
        tx_start: SimTime,
        /// When the destination will receive it (incl. service delay).
        deliver_at: SimTime,
    },
    /// A message from `from` was delivered to this node.
    MessageDelivered {
        /// Origin host.
        from: NodeId,
        /// Payload kind label.
        msg: &'static str,
    },
    /// A message to `to` was dropped by the lossy transport.
    MessageLost {
        /// Intended destination.
        to: NodeId,
        /// Payload kind label.
        msg: &'static str,
        /// Wire size in bytes.
        bytes: u64,
    },
    /// A timer was scheduled on this node.
    TimerArmed {
        /// Engine-unique timer id.
        timer: u64,
        /// Caller-supplied tag.
        tag: u64,
        /// When it will fire.
        fire_at: SimTime,
    },
    /// A pending timer fired on this node.
    TimerFired {
        /// Engine-unique timer id.
        timer: u64,
        /// Caller-supplied tag.
        tag: u64,
    },
    /// A pending timer was cancelled before firing.
    TimerCancelled {
        /// Engine-unique timer id.
        timer: u64,
    },
    /// A transfer request spent time queued (e.g. deferred by the broker
    /// until a peer joined) before its petition could go out. Emitted at
    /// petition time, pointing back at when the request was first enqueued.
    TransferQueued {
        /// Transfer id (raw 128-bit form).
        transfer: u128,
        /// When the request was first enqueued.
        enqueued_at: SimTime,
    },
    /// A file-transfer petition was sent.
    PetitionSent {
        /// Transfer id (raw 128-bit form).
        transfer: u128,
        /// Destination host.
        to: NodeId,
        /// Total file size in bytes.
        bytes: u64,
        /// Number of parts.
        parts: u32,
    },
    /// A petition ack arrived back at the sender.
    PetitionAcked {
        /// Transfer id.
        transfer: u128,
        /// Whether the peer accepted the transfer.
        accepted: bool,
    },
    /// A file part was transmitted.
    PartSent {
        /// Transfer id.
        transfer: u128,
        /// Part index.
        index: u32,
        /// Part size in bytes.
        bytes: u64,
    },
    /// A part confirm arrived at the sender.
    PartConfirmed {
        /// Transfer id.
        transfer: u128,
        /// Confirmed part index.
        index: u32,
        /// Whether the state machine accepted it (false = stale/duplicate).
        accepted: bool,
    },
    /// The receiver saw a part index beyond the next expected one.
    PartGap {
        /// Transfer id.
        transfer: u128,
        /// The out-of-order index that arrived.
        index: u32,
        /// The index that was expected next.
        expected: u32,
    },
    /// A petition or part was retransmitted after a silent timeout.
    Retransmission {
        /// Transfer id.
        transfer: u128,
        /// Part index, or `None` when the petition was retransmitted.
        part: Option<u32>,
        /// Send attempt number this retransmission starts (2 = first retry).
        attempt: u32,
    },
    /// The transfer watchdog gave up on a transfer.
    WatchdogFired {
        /// Transfer id.
        transfer: u128,
    },
    /// A transfer finished.
    TransferCompleted {
        /// Transfer id.
        transfer: u128,
        /// True when every part was confirmed; false when cancelled.
        ok: bool,
    },
    /// A selection model picked a peer.
    SelectionDecided {
        /// Model name.
        model: String,
        /// The chosen host.
        chosen: NodeId,
        /// Per-candidate costs (lower = better), parallel to the candidate
        /// set in node-id order; empty when the model exposes none.
        costs: Vec<(NodeId, f64)>,
    },
    /// A unicast pipe was opened.
    PipeOpened {
        /// Pipe id (raw 128-bit form).
        pipe: u128,
        /// Host the pipe resolves to.
        node: NodeId,
    },
    /// A unicast pipe was closed, with its final traffic accounting.
    PipeClosed {
        /// Pipe id.
        pipe: u128,
        /// Messages routed through it.
        messages: u64,
        /// Bytes routed through it.
        bytes: u64,
    },
    /// A span began (pair with [`TraceEventKind::SpanEnd`] on same key).
    SpanBegin {
        /// What the span covers.
        span: SpanKind,
        /// Caller-chosen key, unique per (kind, lifetime).
        key: u128,
    },
    /// A span ended.
    SpanEnd {
        /// What the span covers.
        span: SpanKind,
        /// The key given at begin.
        key: u128,
        /// Whether the spanned work succeeded.
        ok: bool,
    },
    /// A scripted outage took this broker down.
    BrokerDown,
    /// A scripted restart brought this broker back (empty-handed).
    BrokerUp,
    /// A broker handed a petition it could not place to a fellow broker.
    PetitionForwarded {
        /// The broker the petition was forwarded to.
        to: NodeId,
        /// Remaining hop budget, this forward included.
        hops_left: u32,
    },
    /// A client declared its home broker dead and moved to the next one
    /// on its preference list.
    PeerRehomed {
        /// The broker given up on.
        from: NodeId,
        /// The broker the client re-joined through.
        to: NodeId,
    },
    /// Free-form escape hatch for ad-hoc instrumentation.
    Custom {
        /// Short machine-readable kind.
        kind: &'static str,
        /// Free-form detail.
        detail: String,
    },
}

impl TraceEventKind {
    /// Stable machine-readable label (the `"ev"` field of the JSONL form).
    pub fn label(&self) -> &'static str {
        match self {
            TraceEventKind::MessageSent { .. } => "message_sent",
            TraceEventKind::MessageDelivered { .. } => "message_delivered",
            TraceEventKind::MessageLost { .. } => "message_lost",
            TraceEventKind::TimerArmed { .. } => "timer_armed",
            TraceEventKind::TimerFired { .. } => "timer_fired",
            TraceEventKind::TimerCancelled { .. } => "timer_cancelled",
            TraceEventKind::TransferQueued { .. } => "transfer_queued",
            TraceEventKind::PetitionSent { .. } => "petition_sent",
            TraceEventKind::PetitionAcked { .. } => "petition_acked",
            TraceEventKind::PartSent { .. } => "part_sent",
            TraceEventKind::PartConfirmed { .. } => "part_confirmed",
            TraceEventKind::PartGap { .. } => "part_gap",
            TraceEventKind::Retransmission { .. } => "retransmission",
            TraceEventKind::WatchdogFired { .. } => "watchdog_fired",
            TraceEventKind::TransferCompleted { .. } => "transfer_completed",
            TraceEventKind::SelectionDecided { .. } => "selection_decided",
            TraceEventKind::PipeOpened { .. } => "pipe_opened",
            TraceEventKind::PipeClosed { .. } => "pipe_closed",
            TraceEventKind::SpanBegin { .. } => "span_begin",
            TraceEventKind::SpanEnd { .. } => "span_end",
            TraceEventKind::BrokerDown => "broker_down",
            TraceEventKind::BrokerUp => "broker_up",
            TraceEventKind::PetitionForwarded { .. } => "petition_forwarded",
            TraceEventKind::PeerRehomed { .. } => "peer_rehomed",
            TraceEventKind::Custom { .. } => "custom",
        }
    }
}

/// One trace row.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// The node it happened on.
    pub node: NodeId,
    /// What happened.
    pub kind: TraceEventKind,
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

impl TraceEvent {
    /// Renders the event as one deterministic JSON object (no trailing
    /// newline). Field order is fixed; 128-bit ids are emitted as strings
    /// so any JSON reader round-trips them exactly.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(96);
        let _ = write!(
            o,
            "{{\"t\":{},\"n\":{},\"ev\":\"{}\"",
            self.time.as_nanos(),
            self.node.0,
            self.kind.label()
        );
        match &self.kind {
            TraceEventKind::MessageSent {
                to,
                msg,
                bytes,
                tx_start,
                deliver_at,
            } => {
                let _ = write!(
                    o,
                    ",\"to\":{},\"msg\":\"{}\",\"bytes\":{},\"tx_start\":{},\"deliver_at\":{}",
                    to.0,
                    msg,
                    bytes,
                    tx_start.as_nanos(),
                    deliver_at.as_nanos()
                );
            }
            TraceEventKind::MessageDelivered { from, msg } => {
                let _ = write!(o, ",\"from\":{},\"msg\":\"{}\"", from.0, msg);
            }
            TraceEventKind::MessageLost { to, msg, bytes } => {
                let _ = write!(
                    o,
                    ",\"to\":{},\"msg\":\"{}\",\"bytes\":{}",
                    to.0, msg, bytes
                );
            }
            TraceEventKind::TimerArmed {
                timer,
                tag,
                fire_at,
            } => {
                let _ = write!(
                    o,
                    ",\"timer\":{},\"tag\":{},\"fire_at\":{}",
                    timer,
                    tag,
                    fire_at.as_nanos()
                );
            }
            TraceEventKind::TimerFired { timer, tag } => {
                let _ = write!(o, ",\"timer\":{timer},\"tag\":{tag}");
            }
            TraceEventKind::TimerCancelled { timer } => {
                let _ = write!(o, ",\"timer\":{timer}");
            }
            TraceEventKind::TransferQueued {
                transfer,
                enqueued_at,
            } => {
                let _ = write!(
                    o,
                    ",\"xfer\":\"{}\",\"enqueued_at\":{}",
                    transfer,
                    enqueued_at.as_nanos()
                );
            }
            TraceEventKind::PetitionSent {
                transfer,
                to,
                bytes,
                parts,
            } => {
                let _ = write!(
                    o,
                    ",\"xfer\":\"{}\",\"to\":{},\"bytes\":{},\"parts\":{}",
                    transfer, to.0, bytes, parts
                );
            }
            TraceEventKind::PetitionAcked { transfer, accepted } => {
                let _ = write!(o, ",\"xfer\":\"{transfer}\",\"accepted\":{accepted}");
            }
            TraceEventKind::PartSent {
                transfer,
                index,
                bytes,
            } => {
                let _ = write!(
                    o,
                    ",\"xfer\":\"{transfer}\",\"index\":{index},\"bytes\":{bytes}"
                );
            }
            TraceEventKind::PartConfirmed {
                transfer,
                index,
                accepted,
            } => {
                let _ = write!(
                    o,
                    ",\"xfer\":\"{transfer}\",\"index\":{index},\"accepted\":{accepted}"
                );
            }
            TraceEventKind::PartGap {
                transfer,
                index,
                expected,
            } => {
                let _ = write!(
                    o,
                    ",\"xfer\":\"{transfer}\",\"index\":{index},\"expected\":{expected}"
                );
            }
            TraceEventKind::Retransmission {
                transfer,
                part,
                attempt,
            } => {
                let _ = write!(o, ",\"xfer\":\"{transfer}\",\"part\":");
                match part {
                    Some(i) => {
                        let _ = write!(o, "{i}");
                    }
                    None => o.push_str("null"),
                }
                let _ = write!(o, ",\"attempt\":{attempt}");
            }
            TraceEventKind::WatchdogFired { transfer } => {
                let _ = write!(o, ",\"xfer\":\"{transfer}\"");
            }
            TraceEventKind::TransferCompleted { transfer, ok } => {
                let _ = write!(o, ",\"xfer\":\"{transfer}\",\"ok\":{ok}");
            }
            TraceEventKind::SelectionDecided {
                model,
                chosen,
                costs,
            } => {
                o.push_str(",\"model\":");
                push_json_str(&mut o, model);
                let _ = write!(o, ",\"chosen\":{},\"costs\":[", chosen.0);
                for (i, (node, cost)) in costs.iter().enumerate() {
                    if i > 0 {
                        o.push(',');
                    }
                    let _ = write!(o, "[{},", node.0);
                    push_json_f64(&mut o, *cost);
                    o.push(']');
                }
                o.push(']');
            }
            TraceEventKind::PipeOpened { pipe, node } => {
                let _ = write!(o, ",\"pipe\":\"{}\",\"node\":{}", pipe, node.0);
            }
            TraceEventKind::PipeClosed {
                pipe,
                messages,
                bytes,
            } => {
                let _ = write!(
                    o,
                    ",\"pipe\":\"{pipe}\",\"messages\":{messages},\"bytes\":{bytes}"
                );
            }
            TraceEventKind::SpanBegin { span, key } => {
                let _ = write!(o, ",\"span\":\"{}\",\"key\":\"{}\"", span.label(), key);
            }
            TraceEventKind::SpanEnd { span, key, ok } => {
                let _ = write!(
                    o,
                    ",\"span\":\"{}\",\"key\":\"{}\",\"ok\":{}",
                    span.label(),
                    key,
                    ok
                );
            }
            TraceEventKind::BrokerDown | TraceEventKind::BrokerUp => {}
            TraceEventKind::PetitionForwarded { to, hops_left } => {
                let _ = write!(o, ",\"to\":{},\"hops_left\":{}", to.0, hops_left);
            }
            TraceEventKind::PeerRehomed { from, to } => {
                let _ = write!(o, ",\"from\":{},\"to\":{}", from.0, to.0);
            }
            TraceEventKind::Custom { kind, detail } => {
                let _ = write!(o, ",\"kind\":\"{kind}\",\"detail\":");
                push_json_str(&mut o, detail);
            }
        }
        o.push('}');
        o
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} {}", self.time, self.node, self.to_json())
    }
}

/// A reconstructed begin/end pair (or a begin that never closed).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// What the span covers.
    pub kind: SpanKind,
    /// The pairing key.
    pub key: u128,
    /// Node that opened the span.
    pub node: NodeId,
    /// When it began.
    pub begin: SimTime,
    /// When it ended (`None` = still open when the trace stopped).
    pub end: Option<SimTime>,
    /// Whether the spanned work succeeded (false while open).
    pub ok: bool,
}

impl Span {
    /// Begin→end duration, if closed.
    pub fn duration(&self) -> Option<SimDuration> {
        self.end.map(|e| e.duration_since(self.begin))
    }
}

/// Bounded ring buffer of trace events.
#[derive(Debug, Clone)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            capacity: 0,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// An enabled trace keeping the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            enabled: true,
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, time: SimTime, node: NodeId, kind: TraceEventKind) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { time, node, kind });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained history as JSON Lines (one event per line,
    /// trailing newline after each). The output is a pure function of the
    /// event history, so two same-seed runs yield byte-identical JSONL.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Pairs [`TraceEventKind::SpanBegin`]/[`TraceEventKind::SpanEnd`]
    /// events into [`Span`]s, in begin order. Unmatched ends are ignored;
    /// unmatched begins stay open (`end: None`).
    pub fn spans(&self) -> Vec<Span> {
        let mut spans: Vec<Span> = Vec::new();
        for e in &self.events {
            match &e.kind {
                TraceEventKind::SpanBegin { span, key } => spans.push(Span {
                    kind: *span,
                    key: *key,
                    node: e.node,
                    begin: e.time,
                    end: None,
                    ok: false,
                }),
                TraceEventKind::SpanEnd { span, key, ok } => {
                    if let Some(open) = spans
                        .iter_mut()
                        .rev()
                        .find(|s| s.kind == *span && s.key == *key && s.end.is_none())
                    {
                        open.end = Some(e.time);
                        open.ok = *ok;
                    }
                }
                _ => {}
            }
        }
        spans
    }

    /// Merges per-shard traces into one global history: events are stably
    /// sorted by timestamp, so simultaneous events from different shards
    /// keep the shard order of `parts` and same-shard events keep their
    /// within-shard order. A pure function of the inputs — two identical
    /// sets of shard traces merge to byte-identical JSONL.
    pub fn merged(parts: &[&Trace]) -> Trace {
        let mut events: Vec<TraceEvent> = Vec::with_capacity(parts.iter().map(|t| t.len()).sum());
        for part in parts {
            events.extend(part.events.iter().cloned());
        }
        events.sort_by_key(|e| e.time);
        Trace {
            enabled: parts.iter().any(|t| t.enabled),
            capacity: parts.iter().map(|t| t.capacity).sum(),
            events: events.into(),
            dropped: parts.iter().map(|t| t.dropped).sum(),
        }
    }

    /// A stable digest of the retained history — a cheap equality proxy for
    /// determinism assertions. Computed over the JSONL rendering, so digest
    /// equality and byte-identical [`Trace::to_jsonl`] output coincide.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for e in &self.events {
            for b in e.to_json().as_bytes().iter().chain(std::iter::once(&b'\n')) {
                h ^= *b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn ev(trace: &mut Trace, secs: u64, detail: &str) {
        trace.record(
            t(secs),
            NodeId(0),
            TraceEventKind::Custom {
                kind: "test",
                detail: detail.to_string(),
            },
        );
    }

    #[test]
    fn disabled_records_nothing() {
        let mut tr = Trace::disabled();
        ev(&mut tr, 1, "x");
        assert!(tr.is_empty());
        assert!(!tr.is_enabled());
        assert!(tr.to_jsonl().is_empty());
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut tr = Trace::with_capacity(2);
        ev(&mut tr, 1, "a");
        ev(&mut tr, 2, "b");
        ev(&mut tr, 3, "c");
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.dropped(), 1);
        let details: Vec<String> = tr.events().map(|e| e.to_json()).collect();
        assert!(details[0].contains("\"b\""));
        assert!(details[1].contains("\"c\""));
    }

    #[test]
    fn digest_matches_iff_jsonl_matches() {
        let mut a = Trace::with_capacity(16);
        let mut b = Trace::with_capacity(16);
        ev(&mut a, 1, "x");
        ev(&mut b, 1, "x");
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        ev(&mut b, 2, "y");
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.to_jsonl(), b.to_jsonl());
    }

    #[test]
    fn json_escapes_strings() {
        let mut tr = Trace::with_capacity(4);
        ev(&mut tr, 1, "quote\" slash\\ ctrl\n");
        let line = tr.events().next().unwrap().to_json();
        assert!(line.contains("quote\\\" slash\\\\ ctrl\\u000a"));
    }

    #[test]
    fn typed_events_render_their_fields() {
        let mut tr = Trace::with_capacity(16);
        tr.record(
            t(1),
            NodeId(0),
            TraceEventKind::MessageSent {
                to: NodeId(2),
                msg: "petition",
                bytes: 64,
                tx_start: t(1),
                deliver_at: t(2),
            },
        );
        tr.record(
            t(2),
            NodeId(0),
            TraceEventKind::SelectionDecided {
                model: "economic".into(),
                chosen: NodeId(3),
                costs: vec![(NodeId(1), 0.5), (NodeId(3), f64::INFINITY)],
            },
        );
        tr.record(
            t(3),
            NodeId(0),
            TraceEventKind::Retransmission {
                transfer: 7,
                part: None,
                attempt: 2,
            },
        );
        let lines: Vec<String> = tr.events().map(|e| e.to_json()).collect();
        assert!(lines[0].contains("\"ev\":\"message_sent\""));
        assert!(lines[0].contains("\"deliver_at\":2000000000"));
        assert!(lines[1].contains("\"costs\":[[1,0.5],[3,null]]"));
        assert!(lines[2].contains("\"part\":null"));
        assert!(lines[2].contains("\"attempt\":2"));
    }

    #[test]
    fn spans_pair_begin_and_end() {
        let mut tr = Trace::with_capacity(16);
        tr.record(
            t(1),
            NodeId(0),
            TraceEventKind::SpanBegin {
                span: SpanKind::Transfer,
                key: 42,
            },
        );
        tr.record(
            t(2),
            NodeId(0),
            TraceEventKind::SpanBegin {
                span: SpanKind::Task,
                key: 42,
            },
        );
        tr.record(
            t(5),
            NodeId(0),
            TraceEventKind::SpanEnd {
                span: SpanKind::Transfer,
                key: 42,
                ok: true,
            },
        );
        let spans = tr.spans();
        assert_eq!(spans.len(), 2);
        let xfer = &spans[0];
        assert_eq!(xfer.kind, SpanKind::Transfer);
        assert!(xfer.ok);
        assert_eq!(xfer.duration(), Some(SimDuration::from_secs(4)));
        let task = &spans[1];
        assert_eq!(task.kind, SpanKind::Task, "keys pair within a kind only");
        assert_eq!(task.end, None);
        assert_eq!(task.duration(), None);
    }

    #[test]
    fn merged_orders_by_time_with_shard_order_tiebreak() {
        let mut a = Trace::with_capacity(8);
        let mut b = Trace::with_capacity(8);
        ev(&mut a, 1, "a1");
        ev(&mut a, 3, "a3");
        ev(&mut b, 1, "b1");
        ev(&mut b, 2, "b2");
        let m = Trace::merged(&[&a, &b]);
        assert!(m.is_enabled());
        assert_eq!(m.len(), 4);
        let details: Vec<String> = m.events().map(|e| e.to_json()).collect();
        assert!(details[0].contains("a1"), "shard 0 wins the t=1 tie");
        assert!(details[1].contains("b1"));
        assert!(details[2].contains("b2"));
        assert!(details[3].contains("a3"));
        assert_eq!(m.dropped(), 0);
    }

    #[test]
    fn display_is_readable() {
        let mut tr = Trace::with_capacity(4);
        ev(&mut tr, 1, "hello");
        let s = tr.events().next().unwrap().to_string();
        assert!(s.contains("n0"));
        assert!(s.contains("hello"));
    }
}
