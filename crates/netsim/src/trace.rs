//! Structured event tracing for debugging and determinism tests.
//!
//! The trace is a bounded ring buffer of `(time, node, kind, detail)` rows.
//! It is disabled by default (zero cost beyond a branch); tests enable it to
//! assert that two runs with the same seed produce identical histories.

use std::collections::VecDeque;
use std::fmt;

use crate::node::NodeId;
use crate::time::SimTime;

/// One trace row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// The node it happened on (or was addressed to).
    pub node: NodeId,
    /// Short machine-readable kind, e.g. `"deliver"`, `"timer"`.
    pub kind: &'static str,
    /// Free-form detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {}: {}",
            self.time, self.node, self.kind, self.detail
        )
    }
}

/// Bounded ring buffer of trace events.
#[derive(Debug, Clone)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            capacity: 0,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// An enabled trace keeping the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            enabled: true,
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, time: SimTime, node: NodeId, kind: &'static str, detail: String) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            time,
            node,
            kind,
            detail,
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// A stable digest of the retained history — cheap equality proxy for
    /// determinism assertions.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for e in &self.events {
            for b in e
                .time
                .as_nanos()
                .to_le_bytes()
                .iter()
                .chain(e.node.0.to_le_bytes().iter())
                .chain(e.kind.as_bytes())
                .chain(e.detail.as_bytes())
            {
                h ^= *b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn ev(trace: &mut Trace, secs: u64, detail: &str) {
        trace.record(
            SimTime::ZERO + SimDuration::from_secs(secs),
            NodeId(0),
            "test",
            detail.to_string(),
        );
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        ev(&mut t, 1, "x");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::with_capacity(2);
        ev(&mut t, 1, "a");
        ev(&mut t, 2, "b");
        ev(&mut t, 3, "c");
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let details: Vec<&str> = t.events().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["b", "c"]);
    }

    #[test]
    fn digest_distinguishes_histories() {
        let mut a = Trace::with_capacity(16);
        let mut b = Trace::with_capacity(16);
        ev(&mut a, 1, "x");
        ev(&mut b, 1, "x");
        assert_eq!(a.digest(), b.digest());
        ev(&mut b, 2, "y");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn display_is_readable() {
        let mut t = Trace::with_capacity(4);
        ev(&mut t, 1, "hello");
        let s = t.events().next().unwrap().to_string();
        assert!(s.contains("n0"));
        assert!(s.contains("hello"));
    }
}
