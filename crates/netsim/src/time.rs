//! Virtual time for the discrete-event simulator.
//!
//! Simulation time is kept as an integer number of **nanoseconds** since the
//! start of the simulation. Integer time gives a total order with no
//! floating-point drift, which is what makes replays bit-identical across
//! runs and platforms (see [`crate::engine`] determinism tests).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

const NANOS_PER_SEC: u64 = 1_000_000_000;
const NANOS_PER_MILLI: u64 = 1_000_000;
const NANOS_PER_MICRO: u64 = 1_000;

/// A span of virtual time, in nanoseconds.
///
/// `SimDuration` is a thin wrapper over `u64` nanoseconds. All arithmetic is
/// saturating unless the `checked_*` form is used, so workloads that
/// accidentally produce absurd durations clamp instead of panicking inside
/// the event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration (~584 years).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros.saturating_mul(NANOS_PER_MICRO))
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis.saturating_mul(NANOS_PER_MILLI))
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(NANOS_PER_SEC))
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins.saturating_mul(60).saturating_mul(NANOS_PER_SEC))
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Negative and non-finite inputs clamp to zero; overlarge inputs clamp
    /// to [`SimDuration::MAX`].
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * NANOS_PER_SEC as f64;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos as u64)
        }
    }

    /// Total nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Total time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Total time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Total time as fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        match self.0.checked_add(rhs.0) {
            Some(n) => Some(SimDuration(n)),
            None => None,
        }
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a dimensionless factor, clamping at the representable range.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        if n >= 60 * NANOS_PER_SEC {
            write!(f, "{:.2}min", self.as_mins_f64())
        } else if n >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if n >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if n >= NANOS_PER_MICRO {
            write!(f, "{:.3}us", n as f64 / NANOS_PER_MICRO as f64)
        } else {
            write!(f, "{n}ns")
        }
    }
}

/// An instant of virtual time: nanoseconds elapsed since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinite" deadline.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from fractional seconds since the epoch.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(secs).as_nanos())
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is later.
    pub const fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos()))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.as_nanos()))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_roundtrips() {
        let d = SimDuration::from_secs_f64(12.86);
        assert!((d.as_secs_f64() - 12.86).abs() < 1e-9);
    }

    #[test]
    fn duration_arithmetic_saturates() {
        assert_eq!(
            SimDuration::MAX + SimDuration::from_secs(1),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1) - SimDuration::from_secs(2),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::MAX.checked_add(SimDuration::from_nanos(1)),
            None
        );
    }

    #[test]
    fn duration_scalar_ops() {
        assert_eq!(SimDuration::from_secs(2) * 3, SimDuration::from_secs(6));
        assert_eq!(SimDuration::from_secs(6) / 3, SimDuration::from_secs(2));
        // Division by zero clamps the divisor to one rather than panicking.
        assert_eq!(SimDuration::from_secs(6) / 0, SimDuration::from_secs(6));
        let half = SimDuration::from_secs(1).mul_f64(0.5);
        assert_eq!(half, SimDuration::from_millis(500));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn time_advances_and_diffs() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(250);
        assert_eq!(t1.duration_since(t0), SimDuration::from_millis(250));
        assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
        assert_eq!(t1 - t0, SimDuration::from_millis(250));
    }

    #[test]
    fn time_ordering_is_total() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(7);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimTime::FAR_FUTURE > b);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(3).to_string(), "3.000us");
        assert_eq!(SimDuration::from_millis(40).to_string(), "40.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_mins(3).to_string(), "3.00min");
        assert_eq!(SimTime::from_nanos(0).to_string(), "t+0ns");
    }
}
