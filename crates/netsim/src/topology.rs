//! Topology: the set of simulated hosts plus the path model between them.
//!
//! Two path representations share one [`Topology`] API:
//!
//! - **Dense** — an explicit `n × n` path matrix, the historical model.
//!   Every ordered pair can carry its own [`PathSpec`]. Memory is O(n²),
//!   which is fine up to a few thousand nodes.
//! - **Blocked** — nodes belong to *groups* (regions/ASes) and the path
//!   between two nodes is a function of their groups only: a `G × G`
//!   inter-group matrix whose diagonal holds the intra-group path, plus a
//!   zero-delay loopback. Memory is O(n + G²), which is what makes
//!   million-node synthetic testbeds affordable.
//!
//! The two are deliberately *not* interconvertible at runtime: calling a
//! per-pair mutator ([`Topology::set_path`]) on a blocked topology, or a
//! group mutator on a dense one, panics with a clear message rather than
//! silently densifying a million-node matrix.

use crate::link::{AccessLink, PathSpec};
use crate::node::{NodeId, NodeSpec};

/// Internal path storage: dense per-pair matrix or group-blocked matrix.
#[derive(Debug, Clone)]
enum PathTable {
    /// Row-major `n × n` path matrix (entry `[a][b]` is the a→b path).
    Dense(Vec<PathSpec>),
    /// Group-blocked storage: `group_of[node]` indexes a row-major
    /// `G × G` inter-group matrix whose diagonal is the intra-group path.
    Blocked {
        group_of: Vec<u32>,
        inter: Vec<PathSpec>,
        loopback: PathSpec,
        num_groups: usize,
    },
}

/// A complete simulated network: nodes, their access links, and wide-area
/// paths between every ordered pair.
///
/// Paths default to [`PathSpec::default`] until overridden; a loopback path
/// (node to itself) has zero delay.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
    access: Vec<AccessLink>,
    paths: PathTable,
}

impl Topology {
    /// Creates an empty dense topology.
    pub fn new() -> Self {
        Topology {
            nodes: Vec::new(),
            access: Vec::new(),
            paths: PathTable::Dense(Vec::new()),
        }
    }

    /// Creates an empty *blocked* topology with `num_groups` groups.
    ///
    /// All inter- and intra-group paths start at [`PathSpec::default`];
    /// override them with [`Topology::set_group_path`]. Nodes are added
    /// with [`Topology::add_node_in_group`]. Memory for paths is O(G²)
    /// regardless of node count.
    pub fn blocked(num_groups: usize) -> Self {
        assert!(num_groups > 0, "a blocked topology needs at least 1 group");
        Topology {
            nodes: Vec::new(),
            access: Vec::new(),
            paths: PathTable::Blocked {
                group_of: Vec::new(),
                inter: vec![PathSpec::default(); num_groups * num_groups],
                loopback: PathSpec {
                    one_way_delay: crate::time::SimDuration::ZERO,
                    jitter: crate::time::SimDuration::ZERO,
                },
                num_groups,
            },
        }
    }

    /// Adds a node with its access link; returns its id.
    ///
    /// Dense topologies only — the path matrix is re-extended with default
    /// paths; callers typically add all nodes first and then fill paths
    /// with [`Topology::set_path`]. Panics on a blocked topology (use
    /// [`Topology::add_node_in_group`]).
    pub fn add_node(&mut self, spec: NodeSpec, access: AccessLink) -> NodeId {
        assert!(
            matches!(self.paths, PathTable::Dense(_)),
            "add_node on a blocked topology: use add_node_in_group"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(spec);
        self.access.push(access);
        self.rebuild_paths();
        id
    }

    /// Adds a node to `group` of a blocked topology; returns its id.
    ///
    /// O(1): no path storage grows. Panics on a dense topology or when
    /// `group` is out of range.
    pub fn add_node_in_group(&mut self, spec: NodeSpec, access: AccessLink, group: u32) -> NodeId {
        let PathTable::Blocked {
            group_of,
            num_groups,
            ..
        } = &mut self.paths
        else {
            panic!("add_node_in_group on a dense topology: use add_node");
        };
        assert!(
            (group as usize) < *num_groups,
            "group {group} out of range (topology has {num_groups} groups)"
        );
        let id = NodeId(self.nodes.len() as u32);
        group_of.push(group);
        self.nodes.push(spec);
        self.access.push(access);
        id
    }

    fn rebuild_paths(&mut self) {
        let n = self.nodes.len();
        let mut paths = Vec::with_capacity(n * n);
        for a in 0..n {
            for b in 0..n {
                let existing = self.path_index(a, b);
                if let Some(p) = existing {
                    paths.push(p);
                } else if a == b {
                    paths.push(PathSpec {
                        one_way_delay: crate::time::SimDuration::ZERO,
                        jitter: crate::time::SimDuration::ZERO,
                    });
                } else {
                    paths.push(PathSpec::default());
                }
            }
        }
        self.paths = PathTable::Dense(paths);
    }

    /// Fetches the previous matrix entry during a rebuild, if it existed.
    fn path_index(&self, a: usize, b: usize) -> Option<PathSpec> {
        let PathTable::Dense(paths) = &self.paths else {
            return None;
        };
        let old_n = (paths.len() as f64).sqrt() as usize;
        if a < old_n && b < old_n {
            Some(paths[a * old_n + b].clone())
        } else {
            None
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids, in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The spec of a node.
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.index()]
    }

    /// The access link of a node.
    pub fn access(&self, id: NodeId) -> &AccessLink {
        &self.access[id.index()]
    }

    /// The a→b wide-area path.
    pub fn path(&self, a: NodeId, b: NodeId) -> &PathSpec {
        match &self.paths {
            PathTable::Dense(paths) => &paths[a.index() * self.nodes.len() + b.index()],
            PathTable::Blocked {
                group_of,
                inter,
                loopback,
                num_groups,
            } => {
                if a == b {
                    loopback
                } else {
                    let ga = group_of[a.index()] as usize;
                    let gb = group_of[b.index()] as usize;
                    &inter[ga * num_groups + gb]
                }
            }
        }
    }

    /// Overrides the a→b path (one direction only). Dense topologies only;
    /// panics on a blocked topology (use [`Topology::set_group_path`]).
    pub fn set_path(&mut self, a: NodeId, b: NodeId, path: PathSpec) {
        let n = self.nodes.len();
        let PathTable::Dense(paths) = &mut self.paths else {
            panic!("set_path on a blocked topology: use set_group_path");
        };
        paths[a.index() * n + b.index()] = path;
    }

    /// Overrides both directions of the a↔b path with the same spec.
    pub fn set_path_symmetric(&mut self, a: NodeId, b: NodeId, path: PathSpec) {
        self.set_path(a, b, path.clone());
        self.set_path(b, a, path);
    }

    /// Overrides the `ga`→`gb` inter-group path of a blocked topology
    /// (the `ga == gb` diagonal is the intra-group path). Panics on a
    /// dense topology or out-of-range groups.
    pub fn set_group_path(&mut self, ga: u32, gb: u32, path: PathSpec) {
        let PathTable::Blocked {
            inter, num_groups, ..
        } = &mut self.paths
        else {
            panic!("set_group_path on a dense topology: use set_path");
        };
        let g = *num_groups;
        assert!(
            (ga as usize) < g && (gb as usize) < g,
            "group pair ({ga}, {gb}) out of range (topology has {g} groups)"
        );
        inter[ga as usize * g + gb as usize] = path;
    }

    /// Overrides both directions of the `ga`↔`gb` inter-group path.
    pub fn set_group_path_symmetric(&mut self, ga: u32, gb: u32, path: PathSpec) {
        self.set_group_path(ga, gb, path.clone());
        self.set_group_path(gb, ga, path);
    }

    /// The group of a node in a blocked topology; `None` on dense.
    pub fn group_of(&self, id: NodeId) -> Option<u32> {
        match &self.paths {
            PathTable::Dense(_) => None,
            PathTable::Blocked { group_of, .. } => Some(group_of[id.index()]),
        }
    }

    /// Blocked layout, if any: `(group_of, num_groups, inter)`. Lets the
    /// shard lookahead build its table in O(n + S²G²) instead of O(n²).
    pub(crate) fn blocked_layout(&self) -> Option<(&[u32], usize, &[PathSpec])> {
        match &self.paths {
            PathTable::Dense(_) => None,
            PathTable::Blocked {
                group_of,
                inter,
                num_groups,
                ..
            } => Some((group_of, *num_groups, inter)),
        }
    }

    /// Looks a node up by hostname.
    pub fn find_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|s| s.name == name)
            .map(|i| NodeId(i as u32))
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn add_nodes_assigns_dense_ids() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        let b = t.add_node(NodeSpec::responsive("b"), AccessLink::default());
        assert_eq!(a, NodeId(0));
        assert_eq!(b, NodeId(1));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn loopback_paths_are_zero_delay() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        assert_eq!(t.path(a, a).one_way_delay, SimDuration::ZERO);
    }

    #[test]
    fn set_path_is_directional() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        let b = t.add_node(NodeSpec::responsive("b"), AccessLink::default());
        t.set_path(a, b, PathSpec::from_owd_ms(50.0, 0.0));
        assert!((t.path(a, b).one_way_delay.as_secs_f64() - 0.05).abs() < 1e-9);
        // Reverse direction still default.
        assert!((t.path(b, a).one_way_delay.as_secs_f64() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn set_path_symmetric_sets_both() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        let b = t.add_node(NodeSpec::responsive("b"), AccessLink::default());
        t.set_path_symmetric(a, b, PathSpec::from_owd_ms(33.0, 0.0));
        assert_eq!(t.path(a, b), t.path(b, a));
    }

    #[test]
    fn paths_survive_later_node_additions() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        let b = t.add_node(NodeSpec::responsive("b"), AccessLink::default());
        t.set_path(a, b, PathSpec::from_owd_ms(70.0, 0.0));
        let c = t.add_node(NodeSpec::responsive("c"), AccessLink::default());
        assert!((t.path(a, b).one_way_delay.as_secs_f64() - 0.07).abs() < 1e-9);
        assert!((t.path(a, c).one_way_delay.as_secs_f64() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn find_by_name_works() {
        let mut t = Topology::new();
        t.add_node(NodeSpec::responsive("alpha"), AccessLink::default());
        let beta = t.add_node(NodeSpec::responsive("beta"), AccessLink::default());
        assert_eq!(t.find_by_name("beta"), Some(beta));
        assert_eq!(t.find_by_name("gamma"), None);
    }

    #[test]
    fn node_ids_iterates_in_order() {
        let mut t = Topology::new();
        t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        t.add_node(NodeSpec::responsive("b"), AccessLink::default());
        let ids: Vec<NodeId> = t.node_ids().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn blocked_paths_follow_group_membership() {
        let mut t = Topology::blocked(2);
        let a = t.add_node_in_group(NodeSpec::responsive("a"), AccessLink::default(), 0);
        let b = t.add_node_in_group(NodeSpec::responsive("b"), AccessLink::default(), 0);
        let c = t.add_node_in_group(NodeSpec::responsive("c"), AccessLink::default(), 1);
        t.set_group_path(0, 0, PathSpec::from_owd_ms(2.0, 0.0));
        t.set_group_path_symmetric(0, 1, PathSpec::from_owd_ms(40.0, 0.0));
        assert!((t.path(a, b).one_way_delay.as_secs_f64() - 0.002).abs() < 1e-9);
        assert!((t.path(a, c).one_way_delay.as_secs_f64() - 0.040).abs() < 1e-9);
        assert!((t.path(c, b).one_way_delay.as_secs_f64() - 0.040).abs() < 1e-9);
        // Loopback stays zero regardless of the intra-group path.
        assert_eq!(t.path(a, a).one_way_delay, SimDuration::ZERO);
        assert_eq!(t.group_of(a), Some(0));
        assert_eq!(t.group_of(c), Some(1));
    }

    #[test]
    fn blocked_group_paths_are_directional_until_symmetric() {
        let mut t = Topology::blocked(2);
        let a = t.add_node_in_group(NodeSpec::responsive("a"), AccessLink::default(), 0);
        let b = t.add_node_in_group(NodeSpec::responsive("b"), AccessLink::default(), 1);
        t.set_group_path(0, 1, PathSpec::from_owd_ms(70.0, 0.0));
        assert!((t.path(a, b).one_way_delay.as_secs_f64() - 0.07).abs() < 1e-9);
        // Reverse direction still default.
        assert!((t.path(b, a).one_way_delay.as_secs_f64() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn dense_topology_reports_no_groups() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        assert_eq!(t.group_of(a), None);
    }

    #[test]
    #[should_panic(expected = "use add_node_in_group")]
    fn add_node_panics_on_blocked() {
        let mut t = Topology::blocked(1);
        t.add_node(NodeSpec::responsive("a"), AccessLink::default());
    }

    #[test]
    #[should_panic(expected = "use set_group_path")]
    fn set_path_panics_on_blocked() {
        let mut t = Topology::blocked(1);
        let a = t.add_node_in_group(NodeSpec::responsive("a"), AccessLink::default(), 0);
        let b = t.add_node_in_group(NodeSpec::responsive("b"), AccessLink::default(), 0);
        t.set_path(a, b, PathSpec::default());
    }

    #[test]
    #[should_panic(expected = "use set_path")]
    fn set_group_path_panics_on_dense() {
        let mut t = Topology::new();
        t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        t.set_group_path(0, 0, PathSpec::default());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_node_in_group_validates_group() {
        let mut t = Topology::blocked(2);
        t.add_node_in_group(NodeSpec::responsive("a"), AccessLink::default(), 2);
    }
}
