//! Topology: the set of simulated hosts plus the path matrix between them.

use crate::link::{AccessLink, PathSpec};
use crate::node::{NodeId, NodeSpec};

/// A complete simulated network: nodes, their access links, and wide-area
/// paths between every ordered pair.
///
/// Paths default to [`PathSpec::default`] until overridden; a loopback path
/// (node to itself) has zero delay.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
    access: Vec<AccessLink>,
    /// Row-major `n × n` path matrix (entry `[a][b]` is the a→b path).
    paths: Vec<PathSpec>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology {
            nodes: Vec::new(),
            access: Vec::new(),
            paths: Vec::new(),
        }
    }

    /// Adds a node with its access link; returns its id.
    ///
    /// The path matrix is re-extended with default paths; callers typically
    /// add all nodes first and then fill paths with [`Topology::set_path`].
    pub fn add_node(&mut self, spec: NodeSpec, access: AccessLink) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(spec);
        self.access.push(access);
        self.rebuild_paths();
        id
    }

    fn rebuild_paths(&mut self) {
        let n = self.nodes.len();
        let mut paths = Vec::with_capacity(n * n);
        for a in 0..n {
            for b in 0..n {
                let existing = self.path_index(a, b);
                if let Some(p) = existing {
                    paths.push(p);
                } else if a == b {
                    paths.push(PathSpec {
                        one_way_delay: crate::time::SimDuration::ZERO,
                        jitter: crate::time::SimDuration::ZERO,
                    });
                } else {
                    paths.push(PathSpec::default());
                }
            }
        }
        self.paths = paths;
    }

    /// Fetches the previous matrix entry during a rebuild, if it existed.
    fn path_index(&self, a: usize, b: usize) -> Option<PathSpec> {
        let old_n = (self.paths.len() as f64).sqrt() as usize;
        if a < old_n && b < old_n {
            Some(self.paths[a * old_n + b].clone())
        } else {
            None
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids, in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The spec of a node.
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.index()]
    }

    /// The access link of a node.
    pub fn access(&self, id: NodeId) -> &AccessLink {
        &self.access[id.index()]
    }

    /// The a→b wide-area path.
    pub fn path(&self, a: NodeId, b: NodeId) -> &PathSpec {
        &self.paths[a.index() * self.nodes.len() + b.index()]
    }

    /// Overrides the a→b path (one direction only).
    pub fn set_path(&mut self, a: NodeId, b: NodeId, path: PathSpec) {
        let n = self.nodes.len();
        self.paths[a.index() * n + b.index()] = path;
    }

    /// Overrides both directions of the a↔b path with the same spec.
    pub fn set_path_symmetric(&mut self, a: NodeId, b: NodeId, path: PathSpec) {
        self.set_path(a, b, path.clone());
        self.set_path(b, a, path);
    }

    /// Looks a node up by hostname.
    pub fn find_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|s| s.name == name)
            .map(|i| NodeId(i as u32))
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn add_nodes_assigns_dense_ids() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        let b = t.add_node(NodeSpec::responsive("b"), AccessLink::default());
        assert_eq!(a, NodeId(0));
        assert_eq!(b, NodeId(1));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn loopback_paths_are_zero_delay() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        assert_eq!(t.path(a, a).one_way_delay, SimDuration::ZERO);
    }

    #[test]
    fn set_path_is_directional() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        let b = t.add_node(NodeSpec::responsive("b"), AccessLink::default());
        t.set_path(a, b, PathSpec::from_owd_ms(50.0, 0.0));
        assert!((t.path(a, b).one_way_delay.as_secs_f64() - 0.05).abs() < 1e-9);
        // Reverse direction still default.
        assert!((t.path(b, a).one_way_delay.as_secs_f64() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn set_path_symmetric_sets_both() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        let b = t.add_node(NodeSpec::responsive("b"), AccessLink::default());
        t.set_path_symmetric(a, b, PathSpec::from_owd_ms(33.0, 0.0));
        assert_eq!(t.path(a, b), t.path(b, a));
    }

    #[test]
    fn paths_survive_later_node_additions() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        let b = t.add_node(NodeSpec::responsive("b"), AccessLink::default());
        t.set_path(a, b, PathSpec::from_owd_ms(70.0, 0.0));
        let c = t.add_node(NodeSpec::responsive("c"), AccessLink::default());
        assert!((t.path(a, b).one_way_delay.as_secs_f64() - 0.07).abs() < 1e-9);
        assert!((t.path(a, c).one_way_delay.as_secs_f64() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn find_by_name_works() {
        let mut t = Topology::new();
        t.add_node(NodeSpec::responsive("alpha"), AccessLink::default());
        let beta = t.add_node(NodeSpec::responsive("beta"), AccessLink::default());
        assert_eq!(t.find_by_name("beta"), Some(beta));
        assert_eq!(t.find_by_name("gamma"), None);
    }

    #[test]
    fn node_ids_iterates_in_order() {
        let mut t = Topology::new();
        t.add_node(NodeSpec::responsive("a"), AccessLink::default());
        t.add_node(NodeSpec::responsive("b"), AccessLink::default());
        let ids: Vec<NodeId> = t.node_ids().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1)]);
    }
}
