//! # netsim — deterministic discrete-event wide-area network simulator
//!
//! The substrate underneath the P2P peer-selection reproduction. It provides:
//!
//! * a virtual clock and deterministic FIFO-tie-broken event queue
//!   ([`time`], [`event`]);
//! * a seeded, splittable random-number generator and delay distributions
//!   ([`rng`]);
//! * host models — CPU with sliver-style background load, per-node service
//!   delay ([`node`]) — and network models — access links, wide-area paths
//!   ([`link`], [`topology`]);
//! * an analytic transport model with uplink/downlink FIFO contention, the
//!   Mathis TCP throughput bound, slow-start and large-message penalties
//!   ([`transport`]);
//! * an actor engine dispatching typed messages between hosts ([`engine`]);
//! * measurement plumbing ([`metrics`]), windowed time-series recording
//!   ([`timeseries`]), per-shard execution profiling ([`profile`]), and
//!   structured tracing ([`trace`]).
//!
//! A simulation is a pure function of `(topology, transport config, seed,
//! actors)` — identical inputs produce bit-identical traces, which the test
//! suite asserts.
//!
//! ```
//! use netsim::prelude::*;
//!
//! #[derive(Debug)]
//! struct Hello;
//! impl Payload for Hello {
//!     fn wire_size(&self) -> u64 { 16 }
//! }
//!
//! struct Sender { peer: NodeId }
//! impl Actor<Hello> for Sender {
//!     fn on_start(&mut self, ctx: &mut Context<Hello>) {
//!         ctx.send(self.peer, Hello);
//!     }
//!     fn on_message(&mut self, _: &mut Context<Hello>, _: NodeId, _: Hello) {}
//! }
//! struct Receiver { got: bool }
//! impl Actor<Hello> for Receiver {
//!     fn on_message(&mut self, _: &mut Context<Hello>, _: NodeId, _: Hello) {
//!         self.got = true;
//!     }
//! }
//!
//! let mut topo = Topology::new();
//! let a = topo.add_node(NodeSpec::responsive("a"), AccessLink::default());
//! let b = topo.add_node(NodeSpec::responsive("b"), AccessLink::default());
//! let mut engine = Engine::new(topo, TransportConfig::default(), 42);
//! engine.register(a, Box::new(Sender { peer: b }));
//! engine.register(b, Box::new(Receiver { got: false }));
//! assert_eq!(engine.run(), RunOutcome::QueueEmpty);
//! assert!(engine.now().as_secs_f64() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod link;
pub mod metrics;
pub mod node;
pub mod parallel;
pub mod profile;
pub mod rng;
pub mod shard;
pub mod time;
pub mod timeseries;
pub mod topology;
pub mod trace;
pub mod transport;

/// Convenient re-exports of the types most callers need.
pub mod prelude {
    pub use crate::engine::{Actor, Context, Engine, Payload, RunOutcome, ServiceClass, TimerId};
    pub use crate::link::{AccessLink, PathSpec};
    pub use crate::metrics::{Metrics, RunningStat};
    pub use crate::node::{CpuModel, LoadModel, NodeId, NodeSpec};
    pub use crate::parallel::{ParallelError, ParallelProfile, ShardedEngine};
    pub use crate::profile::{ExecutionProfile, ShardRound, ShardTotals};
    pub use crate::rng::{DelayDistribution, SimRng};
    pub use crate::shard::{shard_seed, LookaheadTable, ShardMap, ShardMapError};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::timeseries::{
        SeriesId, SeriesMode, SeriesRow, SeriesSource, TimeSeriesError, TimeSeriesRecorder,
    };
    pub use crate::topology::Topology;
    pub use crate::transport::{ReceiverDiscipline, TransferPlanner, TransportConfig};
}
