//! Public-API snapshot for the `netsim` crate.
//!
//! The sharded parallel engine added a second public surface next to the
//! serial `Engine` (`shard::ShardMap`, `shard::LookaheadTable`,
//! `parallel::ShardedEngine`, `parallel::ParallelProfile`); this test
//! pins the whole crate's exported items so a refactor that silently
//! drops, renames, or leaks one fails CI with a readable diff instead of
//! breaking the overlay and workloads crates first. The snapshot is the
//! first line of every `pub` item (declarations and inherent methods),
//! grouped by file.
//!
//! To accept an intentional API change:
//!
//! ```text
//! UPDATE_API_SNAPSHOT=1 cargo test -p netsim --test public_api
//! ```

use std::fs;
use std::path::{Path, PathBuf};

const SNAPSHOT: &str = "tests/public_api.snapshot";

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable src dir").flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_files_under(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            // tests.rs / tests_*.rs are #[cfg(test)] modules, not API.
            if !name.starts_with("tests") {
                out.push(path);
            }
        }
    }
}

fn current_surface(src: &Path) -> String {
    let mut files = Vec::new();
    rust_files_under(src, &mut files);
    files.sort();

    let mut out = String::new();
    for path in &files {
        let text =
            fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let pub_lines: Vec<&str> = text
            .lines()
            .map(str::trim_start)
            .filter(|l| l.starts_with("pub ") && !l.starts_with("pub ("))
            .collect();
        if pub_lines.is_empty() {
            continue;
        }
        let rel = path.strip_prefix(src).expect("under src").display();
        out.push_str(&format!("== {rel} ==\n"));
        for line in pub_lines {
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

#[test]
fn public_api_matches_the_snapshot() {
    let crate_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let surface = current_surface(&crate_root.join("src"));
    for module in ["== engine.rs ==", "== shard.rs ==", "== parallel.rs =="] {
        assert!(
            surface.contains(module),
            "surface extraction is broken — {module} missing"
        );
    }

    let snapshot_path = crate_root.join(SNAPSHOT);
    if std::env::var_os("UPDATE_API_SNAPSHOT").is_some() {
        fs::write(&snapshot_path, &surface).expect("write snapshot");
        return;
    }

    let recorded = fs::read_to_string(&snapshot_path).unwrap_or_else(|e| {
        panic!(
            "missing API snapshot {SNAPSHOT} ({e}); \
             regenerate with UPDATE_API_SNAPSHOT=1"
        )
    });
    if surface != recorded {
        let current: Vec<&str> = surface.lines().collect();
        let pinned: Vec<&str> = recorded.lines().collect();
        let mut delta = Vec::new();
        for line in &current {
            if !pinned.contains(line) {
                delta.push(format!("  + {line}"));
            }
        }
        for line in &pinned {
            if !current.contains(line) {
                delta.push(format!("  - {line}"));
            }
        }
        panic!(
            "netsim public API drifted from {SNAPSHOT} \
             (review, then UPDATE_API_SNAPSHOT=1 to accept):\n{}",
            delta.join("\n")
        );
    }
}
