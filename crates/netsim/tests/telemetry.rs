//! Integration coverage for the telemetry subsystem: windowed time-series
//! recording through both engines, worker-count invariance of the series
//! exports, and the per-shard execution profiler with its Chrome-trace
//! exporter.

use netsim::prelude::*;

#[derive(Debug, Clone)]
struct Token(u32);

impl Payload for Token {
    fn wire_size(&self) -> u64 {
        128
    }
    fn kind(&self) -> &'static str {
        "token"
    }
}

/// Bounces a token along a fixed itinerary for a set number of hops.
struct Bouncer {
    itinerary: Vec<NodeId>,
    hops: u32,
    kick_off: bool,
}

impl Actor<Token> for Bouncer {
    fn on_start(&mut self, ctx: &mut Context<Token>) {
        if self.kick_off {
            ctx.send(self.itinerary[0], Token(0));
        }
    }
    fn on_message(&mut self, ctx: &mut Context<Token>, _from: NodeId, msg: Token) {
        if msg.0 < self.hops {
            let next = self.itinerary[(msg.0 as usize) % self.itinerary.len()];
            ctx.send(next, Token(msg.0 + 1));
        }
    }
}

/// Two regions of three nodes: 2 ms inside a region, 40 ms across.
fn two_region_topo() -> Topology {
    let mut t = Topology::new();
    for i in 0..6 {
        t.add_node(NodeSpec::responsive(format!("n{i}")), AccessLink::default());
    }
    for a in 0..6u32 {
        for b in 0..6u32 {
            if a == b {
                continue;
            }
            let ms = if (a < 3) == (b < 3) { 2.0 } else { 40.0 };
            t.set_path(NodeId(a), NodeId(b), PathSpec::from_owd_ms(ms, 0.0));
        }
    }
    t
}

fn series_recorder() -> TimeSeriesRecorder {
    let mut rec = TimeSeriesRecorder::new(SimDuration::from_millis(500)).expect("interval");
    rec.register(
        "delivered",
        SeriesSource::Counter("net.messages_delivered".into()),
        SeriesMode::Cumulative,
    );
    rec.register(
        "delivered_rate",
        SeriesSource::Counter("net.messages_delivered".into()),
        SeriesMode::Delta,
    );
    rec.register(
        "bytes",
        SeriesSource::Counter("net.bytes_sent".into()),
        SeriesMode::Cumulative,
    );
    rec
}

fn register_bouncers(mut install: impl FnMut(NodeId, Box<dyn Actor<Token> + Send>)) {
    let itinerary: Vec<NodeId> = (0..6).map(|j| NodeId((j * 5 + 1) % 6)).collect();
    for (i, node) in (0..6).map(NodeId).enumerate() {
        install(
            node,
            Box::new(Bouncer {
                itinerary: itinerary.clone(),
                hops: 40,
                kick_off: i < 2,
            }),
        );
    }
}

fn sharded(workers: usize) -> ShardedEngine<Token> {
    let map = ShardMap::from_assignment(vec![0, 0, 0, 1, 1, 1]).expect("valid assignment");
    let mut e = ShardedEngine::new(
        two_region_topo(),
        TransportConfig::default(),
        42,
        map,
        workers,
    )
    .expect("positive cross-shard lookahead");
    register_bouncers(|node, actor| e.register(node, actor));
    e
}

#[test]
fn serial_engine_emits_rows_and_final_horizon_boundary() {
    let mut e = Engine::new(two_region_topo(), TransportConfig::default(), 42);
    register_bouncers(|node, actor| e.register(node, actor));
    e.install_recorder(series_recorder());
    let horizon = SimTime::from_secs_f64(10.0);
    e.run_until(horizon);
    let rec = e.take_recorder().expect("recorder installed");
    // Boundaries every 500 ms from 0 through the final clock; the run
    // drains well before the horizon, so the last row sits at the last
    // complete boundary, not at the horizon.
    assert!(!rec.is_empty());
    assert_eq!(rec.rows()[0].t, SimTime::ZERO);
    let last = rec.rows().last().expect("rows");
    assert!(last.t <= horizon);
    // Cumulative column is monotone; the delta column sums to it.
    let deliveries: Vec<f64> = rec.rows().iter().map(|r| r.values[0]).collect();
    assert!(deliveries.windows(2).all(|w| w[0] <= w[1]));
    let delta_sum: f64 = rec.rows().iter().map(|r| r.values[1]).sum();
    assert_eq!(delta_sum, *deliveries.last().expect("rows"));
    assert!(*deliveries.last().expect("rows") > 0.0, "workload ran");
}

#[test]
fn sharded_series_exports_are_worker_count_invariant() {
    let horizon = SimTime::from_secs_f64(10.0);
    let mut exports = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut e = sharded(workers);
        e.install_recorder(series_recorder());
        e.run_until(horizon);
        let rec = e.take_recorder().expect("recorder installed");
        assert!(
            !rec.is_empty(),
            "series must have rows at {workers} workers"
        );
        exports.push((workers, rec.to_csv(), rec.to_jsonl()));
    }
    let (_, csv1, jsonl1) = &exports[0];
    for (workers, csv, jsonl) in &exports[1..] {
        assert_eq!(csv, csv1, "CSV differs at {workers} workers");
        assert_eq!(jsonl, jsonl1, "JSONL differs at {workers} workers");
    }
    assert!(csv1.starts_with("t_secs,delivered,delivered_rate,bytes\n"));
}

#[test]
fn profiler_accounts_rounds_and_chrome_trace_is_deterministic() {
    let horizon = SimTime::from_secs_f64(10.0);
    let mut traces = Vec::new();
    for workers in [1usize, 2] {
        let mut e = sharded(workers);
        e.enable_profiling();
        e.run_until(horizon);
        let profile = e.execution_profile().expect("profiling enabled");
        assert_eq!(profile.num_shards(), 2);
        assert_eq!(profile.rounds(), e.profile().rounds);
        let events: u64 = profile.totals().iter().map(|t| t.events).sum();
        assert_eq!(events, e.events_processed(), "totals cover every event");
        let envelopes: u64 = profile.totals().iter().map(|t| t.envelopes_out).sum();
        assert!(envelopes > 0, "cross-region traffic crosses shards");
        // Sim-time structure (rounds, events, envelopes, windows) is
        // worker-count invariant even though wall-clock spans are not.
        traces.push(profile.chrome_trace_json());
    }
    assert_eq!(traces[0], traces[1], "chrome trace differs across workers");
    let json = &traces[0];
    assert!(json.contains("\"thread_name\""));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(!json.contains("busy"), "wall-clock fields stay out");
}

#[test]
fn profiler_and_recorder_compose_on_one_run() {
    let mut e = sharded(2);
    e.enable_profiling();
    e.install_recorder(series_recorder());
    e.run_until(SimTime::from_secs_f64(10.0));
    assert!(e.execution_profile().is_some());
    let rec = e.take_recorder().expect("recorder installed");
    assert!(!rec.is_empty());
    let wall = e
        .execution_profile()
        .expect("profiling enabled")
        .wall_clock_json();
    assert!(wall.contains("\"busy_secs\":"));
}
