//! Property-based tests for the simulator's core invariants.

use netsim::event::EventQueue;
use netsim::link::{AccessLink, PathSpec};
use netsim::metrics::RunningStat;
use netsim::node::NodeSpec;
use netsim::rng::{DelayDistribution, SimRng};
use netsim::time::{SimDuration, SimTime};
use netsim::topology::Topology;
use netsim::transport::{TransferPlanner, TransportConfig};
use proptest::prelude::*;

fn two_node_topo(mbps: f64, owd_ms: f64, loss: f64) -> Topology {
    let mut t = Topology::new();
    let a = t.add_node(
        NodeSpec::responsive("a"),
        AccessLink::symmetric_mbps(mbps, loss),
    );
    let b = t.add_node(
        NodeSpec::responsive("b"),
        AccessLink::symmetric_mbps(mbps, loss),
    );
    t.set_path_symmetric(a, b, PathSpec::from_owd_ms(owd_ms, 0.0));
    t
}

proptest! {
    /// Popping the event queue always yields non-decreasing timestamps, and
    /// events with equal timestamps come out in insertion order.
    #[test]
    fn event_queue_is_a_stable_total_order(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated for equal timestamps");
                }
            }
            last = Some((t, idx));
        }
    }

    /// Transfer-time estimates grow monotonically with message size.
    #[test]
    fn transfer_estimate_monotone_in_size(
        s1 in 1u64..500_000_000,
        s2 in 1u64..500_000_000,
        mbps in 1.0f64..1000.0,
        owd in 1.0f64..300.0,
    ) {
        let topo = two_node_topo(mbps, owd, 0.001);
        let p = TransferPlanner::new(TransportConfig::default(), topo.len());
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let a = netsim::node::NodeId(0);
        let b = netsim::node::NodeId(1);
        prop_assert!(p.estimate_uncontended(&topo, a, b, lo) <= p.estimate_uncontended(&topo, a, b, hi));
    }

    /// More bandwidth never makes a transfer slower (same everything else).
    #[test]
    fn transfer_estimate_antitone_in_bandwidth(
        size in 1_000u64..200_000_000,
        m1 in 1.0f64..500.0,
        m2 in 1.0f64..500.0,
    ) {
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        let a = netsim::node::NodeId(0);
        let b = netsim::node::NodeId(1);
        let slow = TransferPlanner::new(TransportConfig::default(), 2)
            .estimate_uncontended(&two_node_topo(lo, 50.0, 0.0), a, b, size);
        let fast = TransferPlanner::new(TransportConfig::default(), 2)
            .estimate_uncontended(&two_node_topo(hi, 50.0, 0.0), a, b, size);
        prop_assert!(fast <= slow);
    }

    /// Planning with the same seed twice gives identical timings.
    #[test]
    fn planner_is_deterministic(seed in any::<u64>(), sizes in prop::collection::vec(1u64..10_000_000, 1..20)) {
        let topo = two_node_topo(100.0, 40.0, 0.002);
        let a = netsim::node::NodeId(0);
        let b = netsim::node::NodeId(1);
        let run = |seed: u64| {
            let mut p = TransferPlanner::new(TransportConfig::default(), topo.len());
            let mut rng = SimRng::new(seed);
            sizes.iter()
                .map(|&s| p.plan(&topo, SimTime::ZERO, a, b, s, &mut rng).deliver)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// RunningStat::merge is equivalent to observing sequentially.
    #[test]
    fn running_stat_merge_matches_sequential(
        xs in prop::collection::vec(-1e6f64..1e6, 0..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let mut whole = RunningStat::new();
        for &x in &xs { whole.record(x); }
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        for &x in &xs[..split] { a.record(x); }
        for &x in &xs[split..] { b.record(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
            prop_assert!((a.variance() - whole.variance()).abs() <= 1e-4 * (1.0 + whole.variance().abs()));
        }
    }

    /// Delay distributions only ever produce finite, non-negative samples.
    #[test]
    fn delay_samples_nonnegative(
        seed in any::<u64>(),
        median in 0.0001f64..100.0,
        sigma in 0.0f64..3.0,
    ) {
        let mut rng = SimRng::new(seed);
        let d = DelayDistribution::Lognormal { median, sigma };
        for _ in 0..100 {
            let s = d.sample_secs(&mut rng);
            prop_assert!(s.is_finite() && s >= 0.0);
        }
    }

    /// Duration saturating arithmetic never panics and stays ordered.
    #[test]
    fn duration_arithmetic_total(a in any::<u64>(), b in any::<u64>()) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        let sum = da + db;
        prop_assert!(sum >= da.max(db));
        let diff = da - db;
        prop_assert!(diff <= da);
    }

    /// SimRng::below(n) is always < n.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }
}
