//! Ablation benches for the design choices DESIGN.md calls out: transport
//! model knobs, selection models, and transfer granularity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::time::SimDuration;
use netsim::transport::TransportConfig;
use overlay::broker::{BrokerCommand, TargetSpec};
use overlay::selector::{PeerSelector, RandomSelector};
use peer_selection::prelude::*;
use std::time::Duration;
use workloads::scenario::{run_scenario, ScenarioConfig, SelectorFactory};
use workloads::spec::MB;

fn blind_transfer_cfg(transport: TransportConfig) -> ScenarioConfig {
    ScenarioConfig::builder()
        .transport(transport)
        .at(
            SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 20 * MB,
                num_parts: 20,
                label: "ablate".into(),
            },
        )
        .build()
        .expect("valid scenario")
}

fn mean_transfer_secs(cfg: &ScenarioConfig, seed: u64) -> f64 {
    let r = run_scenario(cfg, seed);
    let ts: Vec<f64> = r
        .log
        .transfers
        .iter()
        .filter_map(|t| t.total_secs())
        .collect();
    ts.iter().sum::<f64>() / ts.len().max(1) as f64
}

/// Transport-model ablation: how each penalty shapes transfer time.
fn ablation_transport(c: &mut Criterion) {
    let variants: Vec<(&str, TransportConfig)> = vec![
        ("full", TransportConfig::default()),
        (
            "no_tcp_bound",
            TransportConfig {
                enable_tcp_bound: false,
                ..TransportConfig::default()
            },
        ),
        (
            "no_slow_start",
            TransportConfig {
                enable_slow_start: false,
                ..TransportConfig::default()
            },
        ),
        (
            "no_large_msg_penalty",
            TransportConfig {
                enable_large_msg_penalty: false,
                ..TransportConfig::default()
            },
        ),
        ("ideal", TransportConfig::ideal()),
    ];
    // Print the ablation table once: the headline effect sizes.
    println!("== Ablation: transport model knobs (mean blind 20 MB transfer) ==");
    for (name, t) in &variants {
        let secs = mean_transfer_secs(&blind_transfer_cfg(t.clone()), 1);
        println!("  {name:<22} {secs:>8.2} s");
    }
    let mut g = c.benchmark_group("ablation_transport");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    for (name, t) in variants {
        let cfg = blind_transfer_cfg(t);
        let mut seed = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                seed += 1;
                mean_transfer_secs(cfg, seed)
            })
        });
    }
    g.finish();
}

fn selected_transfer_cfg(factory: SelectorFactory) -> ScenarioConfig {
    ScenarioConfig::measurement_setup()
        .at(
            SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 4 * MB,
                num_parts: 4,
                label: "warmup".into(),
            },
        )
        .at(
            SimDuration::from_secs(400),
            BrokerCommand::DistributeFile {
                target: TargetSpec::Selected,
                size_bytes: 10 * MB,
                num_parts: 10,
                label: "measured".into(),
            },
        )
        .with_selector(factory)
}

/// Selection-model sweep including the bandit extensions.
fn ablation_selection_models(c: &mut Criterion) {
    #[allow(clippy::type_complexity)]
    let factories: Vec<(&str, fn() -> SelectorFactory)> = vec![
        ("economic", || {
            Box::new(|_| -> Box<dyn PeerSelector> { Box::new(Scored::new(EconomicModel::new())) })
        }),
        ("evaluator", || {
            Box::new(|_| -> Box<dyn PeerSelector> {
                Box::new(Scored::new(DataEvaluatorModel::same_priority()))
            })
        }),
        ("quick_peer", || {
            Box::new(|_| -> Box<dyn PeerSelector> {
                Box::new(Scored::new(UserPreferenceModel::quick_peer()))
            })
        }),
        ("ucb1", || {
            Box::new(|_| -> Box<dyn PeerSelector> {
                Box::new(Ucb1Selector::new(std::f64::consts::SQRT_2, 2e6))
            })
        }),
        ("random", || {
            Box::new(|seed| -> Box<dyn PeerSelector> { Box::new(RandomSelector::new(seed)) })
        }),
    ];
    println!("== Ablation: selected 10 MB transfer time by model ==");
    for (name, mk) in &factories {
        let cfg = selected_transfer_cfg(mk());
        let r = run_scenario(&cfg, 1);
        let secs = r
            .log
            .transfers
            .iter()
            .find(|t| t.label == "measured")
            .and_then(|t| t.total_secs())
            .unwrap_or(f64::NAN);
        println!("  {name:<12} {secs:>8.2} s");
    }
    let mut g = c.benchmark_group("ablation_selection");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    for (name, mk) in factories {
        let mut seed = 0u64;
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                seed += 1;
                let cfg = selected_transfer_cfg(mk());
                run_scenario(&cfg, seed).elapsed.as_nanos()
            })
        });
    }
    g.finish();
}

/// Granularity sweep beyond the paper's {1, 4, 16}.
fn ablation_granularity(c: &mut Criterion) {
    println!("== Ablation: 100 MB transfer time vs part count (SC4) ==");
    for parts in [1u32, 2, 4, 8, 16, 32, 64] {
        let cfg = ScenarioConfig::measurement_setup().at(
            SimDuration::from_secs(60),
            BrokerCommand::DistributeFile {
                target: TargetSpec::Node(netsim::node::NodeId(4)),
                size_bytes: 100 * MB,
                num_parts: parts,
                label: "gran".into(),
            },
        );
        let r = run_scenario(&cfg, 1);
        let secs = r.log.transfers[0].total_secs().unwrap_or(f64::NAN);
        println!("  {parts:>3} parts  {:>8.2} min", secs / 60.0);
    }
    let mut g = c.benchmark_group("ablation_granularity");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    for parts in [1u32, 16, 64] {
        let mut seed = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(parts), &parts, |b, &parts| {
            b.iter(|| {
                seed += 1;
                let cfg = ScenarioConfig::measurement_setup().at(
                    SimDuration::from_secs(60),
                    BrokerCommand::DistributeFile {
                        target: TargetSpec::Node(netsim::node::NodeId(4)),
                        size_bytes: 100 * MB,
                        num_parts: parts,
                        label: "gran".into(),
                    },
                );
                run_scenario(&cfg, seed).elapsed.as_nanos()
            })
        });
    }
    g.finish();
}

/// Receiver-discipline ablation: FIFO vs processor-sharing under the Fig 6
/// contention scenario — shows the quick-peer contention penalty is a
/// property of sharing a bottleneck, not of the queueing discipline.
fn ablation_receiver_discipline(c: &mut Criterion) {
    use netsim::transport::ReceiverDiscipline;
    println!("== Ablation: receiver discipline (two concurrent 10 MB transfers to SC4) ==");
    for (name, discipline) in [
        ("fifo", ReceiverDiscipline::Fifo),
        ("processor_sharing", ReceiverDiscipline::ProcessorSharing),
    ] {
        let cfg = ScenarioConfig::builder()
            .transport(TransportConfig {
                receiver_discipline: discipline,
                ..TransportConfig::default()
            })
            .at(
                SimDuration::from_secs(60),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::Node(netsim::node::NodeId(4)),
                    size_bytes: 10 * MB,
                    num_parts: 10,
                    label: "first".into(),
                },
            )
            .at(
                SimDuration::from_secs(61),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::Node(netsim::node::NodeId(4)),
                    size_bytes: 10 * MB,
                    num_parts: 10,
                    label: "second".into(),
                },
            )
            .build()
            .expect("valid scenario");
        let r = run_scenario(&cfg, 1);
        let secs = |label: &str| {
            r.log
                .transfers
                .iter()
                .find(|t| t.label == label)
                .and_then(|t| t.total_secs())
                .unwrap_or(f64::NAN)
        };
        println!(
            "  {name:<18} first {:>6.2} s, second {:>6.2} s",
            secs("first"),
            secs("second")
        );
    }
    let mut g = c.benchmark_group("ablation_receiver_discipline");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(6));
    for (name, discipline) in [
        ("fifo", ReceiverDiscipline::Fifo),
        ("processor_sharing", ReceiverDiscipline::ProcessorSharing),
    ] {
        let mut seed = 0u64;
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                seed += 1;
                let cfg = blind_transfer_cfg(TransportConfig {
                    receiver_discipline: discipline,
                    ..TransportConfig::default()
                });
                mean_transfer_secs(&cfg, seed)
            })
        });
    }
    g.finish();
}

/// Stats-window ablation: the "last k hours" criterion with different k.
/// With stationary peers the window barely matters; the bench quantifies
/// that design insensitivity.
fn ablation_history_window(c: &mut Criterion) {
    use overlay::stats::{PeerStats, WindowedRatio};
    let mut g = c.benchmark_group("ablation_history_window");
    for k in [1usize, 6, 24, 48] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            // Pre-populate 48 hours of message history, then time snapshots.
            let mut stats = PeerStats::new(netsim::time::SimTime::ZERO, 1.0);
            let mut rng = rand::rngs::mock::StepRng::new(1, 7);
            use rand::RngCore;
            for h in 0..48u64 {
                for m in 0..20u64 {
                    let t = netsim::time::SimTime::ZERO
                        + netsim::time::SimDuration::from_secs(h * 3600 + m * 60);
                    stats.record_message(t, !rng.next_u32().is_multiple_of(10));
                }
            }
            let now = netsim::time::SimTime::ZERO + netsim::time::SimDuration::from_secs(48 * 3600);
            b.iter(|| stats.snapshot(now, k).msg_success_last_k)
        });
    }
    // Window arithmetic microbench.
    g.bench_function("windowed_record_and_query", |b| {
        b.iter(|| {
            let mut w = WindowedRatio::new(48);
            for i in 0..1000u64 {
                let t = netsim::time::SimTime::ZERO + netsim::time::SimDuration::from_secs(i * 180);
                w.record(t, i % 7 != 0);
            }
            w.percent_last_hours(
                netsim::time::SimTime::ZERO + netsim::time::SimDuration::from_secs(180_000),
                24,
            )
        })
    });
    g.finish();
}

criterion_group!(
    ablations,
    ablation_transport,
    ablation_selection_models,
    ablation_granularity,
    ablation_receiver_discipline,
    ablation_history_window
);
criterion_main!(ablations);
