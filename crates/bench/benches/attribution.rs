//! Attribution-layer benches: what the latency-attribution pass costs on
//! top of a traced run, split into trace replay (pure decomposition) and
//! the full pipeline (run + attribute + aggregate + export).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::node::NodeId;
use std::time::Duration;
use workloads::attribution::{
    aggregate_metrics, attribute_trace, breakdown_by_peer, phase_table_csv,
};
use workloads::runner::run_traced;
use workloads::scenario::ScenarioConfig;

/// Pure decomposition cost: replay a captured trace through
/// `attribute_trace` without re-running the simulation.
fn bench_attribute_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("attribution/decompose");
    group.measurement_time(Duration::from_secs(5));
    for name in ["fig2", "fig234", "fig5-lossy"] {
        let cfg = ScenarioConfig::named(name).expect("known scenario");
        let run = run_traced(&cfg, 1);
        assert_eq!(run.result.trace.dropped(), 0);
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &run.result.trace,
            |b, trace| {
                b.iter(|| attribute_trace(trace).len());
            },
        );
    }
    group.finish();
}

/// End-to-end exposition cost: breakdown + metrics aggregation + both
/// export formats, from an already-attributed transfer set.
fn bench_exposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("attribution/export");
    group.measurement_time(Duration::from_secs(5));
    let cfg = ScenarioConfig::named("fig5").expect("known scenario");
    let run = run_traced(&cfg, 1);
    let attrs = attribute_trace(&run.result.trace);
    let label = |node: NodeId| format!("n{}", node.0);
    group.bench_function("csv", |b| {
        b.iter(|| phase_table_csv(&breakdown_by_peer(&attrs, &label)).len());
    });
    group.bench_function("prometheus", |b| {
        b.iter(|| {
            aggregate_metrics(&attrs, &label)
                .render_prometheus("psim")
                .len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_attribute_trace, bench_exposition);
criterion_main!(benches);
