//! Sweep-campaign scaling: cells/second of the grid driver as the worker
//! count grows. Two modes mirror `psim bench-sweep` (which renders the
//! same measurements into `BENCH_sweep.json`):
//!
//! - pool mode: wait-bound cells (the PlanetLab shape — a campaign cell is
//!   a wall-clock-bound remote experiment), which scale with workers on
//!   any host because sleeping threads overlap;
//! - campaign mode: real simulated cells, which are CPU-bound and scale
//!   only up to the host's core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use workloads::sweep::{
    named_grid, run_campaign, CellWorkload, ModelKind, SeedScheme, SweepSpec, TestbedAxis,
    ACCEPT_ALL,
};

/// A small Distribute grid: 2 cells x 2 reps of a 4 MB broadcast.
fn small_grid() -> SweepSpec {
    SweepSpec {
        name: "bench-grid".into(),
        workload: CellWorkload::Distribute {
            size_bytes: 4 * workloads::spec::MB,
        },
        models: vec![ModelKind::Blind],
        parts: vec![4, 16],
        drop_probabilities: vec![0.0],
        testbeds: vec![TestbedAxis::Measurement],
        accept_profiles: vec![ACCEPT_ALL],
        brokers: vec![1],
        gossip_staleness: vec![0.0],
        piece_policies: vec![workloads::streaming::PiecePolicy::Sequential],
        windows: vec![1],
        uploads: vec![workloads::streaming::UploadProfile::Home],
        seeds: SeedScheme::Derived {
            campaign_seed: 1,
            replications: 2,
        },
        warmup: netsim::time::SimDuration::from_secs(60),
    }
}

fn sweep_workers(c: &mut Criterion) {
    let spec = small_grid();
    let mut g = c.benchmark_group("sweep_campaign");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(10));
    for workers in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("small_grid", format!("{workers}_workers")),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    run_campaign(&spec, workers)
                        .expect("valid grid")
                        .cells
                        .len()
                })
            },
        );
    }
    g.finish();
}

fn sweep_named_grids(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_campaign");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    for grid in ["fig345", "fig67"] {
        let spec = named_grid(grid, 1, 2).expect("built-in grid");
        g.bench_with_input(BenchmarkId::new("named", grid), &spec, |b, spec| {
            b.iter(|| run_campaign(spec, 4).expect("valid grid").cells.len())
        });
    }
    g.finish();
}

criterion_group!(sweep, sweep_workers, sweep_named_grids);
criterion_main!(sweep);
