//! One benchmark group per paper artifact: each iteration regenerates the
//! artifact's data from a fresh single-seed simulation, and the full
//! paper-vs-measured report is printed once per group so `cargo bench`
//! doubles as a reproduction harness.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use workloads::experiments::{fig5, fig6, fig7, table1, transfer_study};
use workloads::spec::ExperimentSpec;

fn one_seed(seed: u64) -> ExperimentSpec {
    ExperimentSpec {
        seeds: vec![seed],
        ..ExperimentSpec::quick()
    }
}

fn bench_table1(c: &mut Criterion) {
    println!("{}", table1::run());
    let mut g = c.benchmark_group("table1");
    g.bench_function("render_roster_and_testbed", |b| {
        b.iter(|| table1::run().len())
    });
    g.finish();
}

fn bench_fig2_3_4(c: &mut Criterion) {
    // Figures 2–4 share the blind 50 MB study.
    let study = transfer_study::run(&ExperimentSpec::quick());
    println!("{}", transfer_study::fig2::report(&study).render());
    println!("{}", transfer_study::fig3::report(&study).render());
    println!("{}", transfer_study::fig4::report(&study).render());
    let mut g = c.benchmark_group("fig2_3_4");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    let mut seed = 0u64;
    g.bench_function("blind_50mb_study_one_seed", |b| {
        b.iter(|| {
            seed += 1;
            transfer_study::run(&one_seed(seed)).total_min.means()
        })
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    println!("{}", fig5::run(&ExperimentSpec::quick()).render());
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(10));
    let mut seed = 0u64;
    g.bench_function("granularity_sweep_one_seed", |b| {
        b.iter(|| {
            seed += 1;
            fig5::run_experiment(&one_seed(seed)).average_minutes(2)
        })
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    println!(
        "{}",
        fig6::run(&ExperimentSpec::quick())
            .expect("built-in models")
            .render()
    );
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(12));
    let mut seed = 0u64;
    g.bench_function("selection_models_one_seed", |b| {
        b.iter(|| {
            seed += 1;
            fig6::run_experiment(&one_seed(seed))
                .expect("built-in models")
                .seconds[0]
                .means()
        })
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    println!("{}", fig7::run(&ExperimentSpec::quick()).render());
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(10));
    let mut seed = 0u64;
    g.bench_function("exec_vs_transfer_exec_one_seed", |b| {
        b.iter(|| {
            seed += 1;
            fig7::run_experiment(&one_seed(seed)).trans_exec.means()
        })
    });
    g.finish();
}

criterion_group!(
    artifacts,
    bench_table1,
    bench_fig2_3_4,
    bench_fig5,
    bench_fig6,
    bench_fig7
);
criterion_main!(artifacts);
