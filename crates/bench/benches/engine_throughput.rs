//! Engine hot-path throughput: the bench tracking the zero-allocation
//! per-event path across PRs. Drives ≥1M events through a ping-pong actor
//! pair and the full 8-client broker scenario, plus the isolated metrics
//! layer (string-keyed vs interned). `psim bench-engine` renders the same
//! measurements into `BENCH_engine.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use workloads::enginebench;

fn engine_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(15));
    g.bench_function(BenchmarkId::new("pingpong", "1M_events"), |b| {
        b.iter(|| enginebench::pingpong(black_box(1_000_000), 1).events)
    });
    g.bench_function(
        BenchmarkId::new("pingpong_string_metrics", "1M_events"),
        |b| b.iter(|| enginebench::pingpong_string_metrics(black_box(1_000_000), 1).events),
    );
    g.finish();
}

fn engine_broker_scenario(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(15));
    g.bench_function(BenchmarkId::new("broker", "8_clients"), |b| {
        b.iter(|| enginebench::broker_scenario(black_box(3), 1).events)
    });
    g.finish();
}

fn metrics_layer(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics_layer");
    g.bench_function("string_vs_interned_1M_events", |b| {
        b.iter(|| enginebench::metrics_overhead(black_box(1_000_000)).speedup())
    });
    g.finish();
}

criterion_group!(
    engine_throughput,
    engine_pingpong,
    engine_broker_scenario,
    metrics_layer
);
criterion_main!(engine_throughput);
