//! Microbenches of the simulator core: event queue, RNG, transfer planner,
//! actor engine, and testbed construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::event::EventQueue;
use netsim::link::{AccessLink, PathSpec};
use netsim::node::{NodeId, NodeSpec};
use netsim::prelude::*;
use netsim::rng::SimRng;
use netsim::transport::{TransferPlanner, TransportConfig};
use planetlab::builder::{build, TestbedConfig};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            let mut rng = SimRng::new(1);
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.schedule(SimTime::from_nanos(rng.next_u64_raw() % 1_000_000), i);
                }
                let mut acc = 0usize;
                while let Some((_, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("next_u64_x1000", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64_raw());
            }
            acc
        })
    });
    g.bench_function("lognormal_x1000", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| {
            let mut acc = 0.0f64;
            for _ in 0..1000 {
                acc += rng.lognormal_median(0.1, 0.8);
            }
            acc
        })
    });
    g.finish();
}

fn bench_transfer_planner(c: &mut Criterion) {
    let mut topo = Topology::new();
    let a = topo.add_node(NodeSpec::responsive("a"), AccessLink::default());
    let b_node = topo.add_node(NodeSpec::responsive("b"), AccessLink::default());
    topo.set_path_symmetric(a, b_node, PathSpec::from_owd_ms(25.0, 0.1));
    c.bench_function("transfer_plan_x1000", |b| {
        b.iter(|| {
            let mut planner = TransferPlanner::new(TransportConfig::default(), topo.len());
            let mut rng = SimRng::new(4);
            let mut t = SimTime::ZERO;
            for _ in 0..1000 {
                let timing = planner.plan(&topo, t, a, b_node, 100_000, &mut rng);
                t = timing.deliver;
            }
            t.as_nanos()
        })
    });
}

#[derive(Debug)]
struct Token(u32);
impl Payload for Token {
    fn wire_size(&self) -> u64 {
        64
    }
}

struct Bouncer {
    peer: NodeId,
    remaining: u32,
}
impl Actor<Token> for Bouncer {
    fn on_start(&mut self, ctx: &mut Context<Token>) {
        if self.remaining > 0 {
            ctx.send(self.peer, Token(self.remaining));
        }
    }
    fn on_message(&mut self, ctx: &mut Context<Token>, from: NodeId, msg: Token) {
        if msg.0 > 1 {
            ctx.send(from, Token(msg.0 - 1));
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_pingpong_10k_msgs", |b| {
        b.iter(|| {
            let mut topo = Topology::new();
            let a = topo.add_node(NodeSpec::responsive("a"), AccessLink::default());
            let z = topo.add_node(NodeSpec::responsive("b"), AccessLink::default());
            topo.set_path_symmetric(a, z, PathSpec::from_owd_ms(5.0, 0.0));
            let mut engine = Engine::new(topo, TransportConfig::ideal(), 5);
            engine.register(
                a,
                Box::new(Bouncer {
                    peer: z,
                    remaining: 10_000,
                }),
            );
            engine.register(
                z,
                Box::new(Bouncer {
                    peer: a,
                    remaining: 0,
                }),
            );
            engine.run();
            engine.now().as_nanos()
        })
    });
}

fn bench_testbed_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("testbed");
    g.bench_function("measurement_setup", |b| {
        b.iter(|| build(&TestbedConfig::measurement_setup()).len())
    });
    g.bench_function("full_slice", |b| {
        b.iter(|| build(&TestbedConfig::full_slice()).len())
    });
    g.finish();
}

criterion_group!(
    simulator,
    bench_event_queue,
    bench_rng,
    bench_transfer_planner,
    bench_engine,
    bench_testbed_build
);
criterion_main!(simulator);
