//! Benchmark-only crate: see the `benches/` directory. One criterion group
//! per paper artifact (`paper_artifacts`), the design-choice ablations
//! (`ablations`), and simulator-core microbenches (`simulator`).
