//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this repository has no network access, so the
//! real proptest cannot be fetched. This crate vendors the small subset of
//! its API that the workspace's property tests use: the [`proptest!`] and
//! [`prop_compose!`] macros, range/tuple/`Vec`/`Option` strategies, a
//! regex-subset string strategy, and `any::<T>()`.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its case index and the
//!   deterministic per-test seed instead of a minimized input.
//! - **Deterministic by default.** Each test derives its RNG seed from the
//!   test's module path, so runs are reproducible without a persistence
//!   file. Set `PROPTEST_CASES` to change the case count (default 64).
//! - `prop_assert!`/`prop_assert_eq!` panic directly rather than returning
//!   `Err`, which is equivalent under this runner.

use std::fmt;
use std::ops::Range;

/// Number of cases each `proptest!` test runs (env `PROPTEST_CASES`, default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic splitmix64 generator used by the test runner.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Derives a stable seed from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded sampling; bias is negligible for test data.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test inputs. The offline analogue of proptest's strategy
/// trait: no shrink tree, only generation.
pub trait Strategy {
    /// The type of the generated values.
    type Value;
    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

/// String strategy from a regex subset: literal characters, `\x` escapes,
/// `[a-z0-9_]` character classes (with ranges), and `{m}` / `{m,n}`
/// repetition after a class or literal.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    #[derive(Clone)]
    enum Piece {
        Lit(char),
        Class(Vec<char>),
    }
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let piece = match chars[i] {
            '\\' => {
                i += 1;
                let c = *chars.get(i).expect("dangling escape in pattern");
                i += 1;
                Piece::Lit(c)
            }
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern");
                i += 1; // consume ']'
                assert!(!set.is_empty(), "empty class in pattern");
                Piece::Class(set)
            }
            c => {
                i += 1;
                Piece::Lit(c)
            }
        };
        // Optional {m} / {m,n} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<u64>().expect("bad repetition"),
                    b.trim().parse::<u64>().expect("bad repetition"),
                ),
                None => {
                    let n = body.trim().parse::<u64>().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = lo + if hi > lo { rng.below(hi - lo + 1) } else { 0 };
        for _ in 0..count {
            match &piece {
                Piece::Lit(c) => out.push(*c),
                Piece::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
            }
        }
    }
    out
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

/// Wraps a generation closure as a strategy; the expansion target of
/// [`prop_compose!`].
pub struct FnStrategy<V, F: Fn(&mut TestRng) -> V> {
    f: F,
}

impl<V, F: Fn(&mut TestRng) -> V> FnStrategy<V, F> {
    /// Wraps `f`.
    pub fn new(f: F) -> Self {
        FnStrategy { f }
    }
}

impl<V, F: Fn(&mut TestRng) -> V> Strategy for FnStrategy<V, F> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.f)(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, broad range; the tests that use any::<f64>() only need
        // "some finite number".
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over all values of `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bound for [`vec`]: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: u64,
        hi: u64, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n as u64,
                hi: n as u64 + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start as u64,
                hi: r.end as u64,
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy's values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Option`s of an inner strategy's values.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Match proptest's default 3:1 Some:None weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Mirror of proptest's prelude.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest, Strategy,
    };

    /// The `prop` module path used by `prop::collection::vec` etc.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Reports a failing case before the panic unwinds.
pub fn report_failure(test: &str, case: u64, total: u64) {
    eprintln!("proptest-shim: case {case}/{total} of `{test}` failed (deterministic seed; re-run reproduces it)");
}

impl fmt::Display for TestRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TestRng({:#x})", self.state)
    }
}

/// Property-test entry point: mirrors `proptest! { #[test] fn name(arg in strategy, ...) { body } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $( $crate::__proptest_args!{ @munch [$(#[$meta])*] $name [] [$body] $($args)* } )*
    };
}

/// Internal: accumulates `(mutability, name, strategy)` triples, then emits.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_args {
    (@munch [$($meta:tt)*] $name:ident [$($acc:tt)*] [$body:block]) => {
        $crate::__proptest_emit!{ [$($meta)*] $name [$($acc)*] [$body] }
    };
    (@munch [$($meta:tt)*] $name:ident [$($acc:tt)*] [$body:block] mut $arg:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_args!{ @munch [$($meta)*] $name [$($acc)* {[mut] $arg ($strat)}] [$body] $($rest)* }
    };
    (@munch [$($meta:tt)*] $name:ident [$($acc:tt)*] [$body:block] mut $arg:ident in $strat:expr) => {
        $crate::__proptest_args!{ @munch [$($meta)*] $name [$($acc)* {[mut] $arg ($strat)}] [$body] }
    };
    (@munch [$($meta:tt)*] $name:ident [$($acc:tt)*] [$body:block] $arg:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_args!{ @munch [$($meta)*] $name [$($acc)* {[] $arg ($strat)}] [$body] $($rest)* }
    };
    (@munch [$($meta:tt)*] $name:ident [$($acc:tt)*] [$body:block] $arg:ident in $strat:expr) => {
        $crate::__proptest_args!{ @munch [$($meta)*] $name [$($acc)* {[] $arg ($strat)}] [$body] }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_emit {
    ([$($meta:tt)*] $name:ident [$({[$($m:tt)*] $arg:ident ($strat:expr)})*] [$body:block]) => {
        $($meta)*
        fn $name() {
            let __total = $crate::cases();
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__total {
                $( let $($m)* $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(e) = __outcome {
                    $crate::report_failure(stringify!($name), __case, __total);
                    ::std::panic::resume_unwind(e);
                }
            }
        }
    };
}

/// Mirrors `prop_compose! { fn name(outer: T)(arg in strategy, ...) -> Ret { body } }`.
#[macro_export]
macro_rules! prop_compose {
    ($vis:vis fn $name:ident($($oarg:ident : $oty:ty),* $(,)?)($($args:tt)*) -> $ret:ty $body:block) => {
        $vis fn $name($($oarg : $oty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy::new(move |__rng: &mut $crate::TestRng| -> $ret {
                $crate::__prop_compose_args!{ @munch [$body] __rng $($args)* }
            })
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __prop_compose_args {
    (@munch [$body:block] $rng:ident) => { $body };
    (@munch [$body:block] $rng:ident $arg:ident in $strat:expr, $($rest:tt)*) => {{
        let $arg = $crate::Strategy::generate(&($strat), $rng);
        $crate::__prop_compose_args!{ @munch [$body] $rng $($rest)* }
    }};
    (@munch [$body:block] $rng:ident $arg:ident in $strat:expr) => {{
        let $arg = $crate::Strategy::generate(&($strat), $rng);
        $crate::__prop_compose_args!{ @munch [$body] $rng }
    }};
}

/// Asserting macro; panics directly under this runner.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion; panics directly under this runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion; panics directly under this runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&f));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = collection::vec(0u32..5, 2..7).generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 7);
            let exact = collection::vec(0u32..5, 4usize).generate(&mut rng);
            assert_eq!(exact.len(), 4);
        }
    }

    #[test]
    fn option_strategy_produces_both() {
        let mut rng = TestRng::new(3);
        let strat = option::of(0u32..10);
        let vals: Vec<_> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(vals.iter().any(|v| v.is_none()));
        assert!(vals.iter().any(|v| v.is_some()));
    }

    #[test]
    fn regex_subset_generator() {
        let mut rng = TestRng::new(4);
        for _ in 0..100 {
            let s = "[a-z]{1,20}\\.[a-z]{2,10}\\.[a-z]{2,3}".generate(&mut rng);
            let parts: Vec<&str> = s.split('.').collect();
            assert_eq!(parts.len(), 3, "{s}");
            assert!((1..=20).contains(&parts[0].len()));
            assert!((2..=10).contains(&parts[1].len()));
            assert!((2..=3).contains(&parts[2].len()));
            assert!(s.chars().all(|c| c == '.' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn tuple_strategy_composes() {
        let mut rng = TestRng::new(5);
        let (a, b) = (0u64..10, any::<bool>()).generate(&mut rng);
        assert!(a < 10);
        let _: bool = b;
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u64..100, mut v in crate::collection::vec(0u32..10, 0..5)) {
            prop_assert!(x < 100);
            v.sort();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    prop_compose! {
        fn arb_pair(offset: u64)(a in 0u64..10, b in 0u64..10) -> (u64, u64) {
            (a + offset, b + offset)
        }
    }

    proptest! {
        #[test]
        fn composed_strategies_work(p in arb_pair(100)) {
            prop_assert!(p.0 >= 100 && p.0 < 110);
            prop_assert!(p.1 >= 100 && p.1 < 110);
        }
    }
}
