//! Estimated heap accounting for overlay state.
//!
//! ROADMAP item 1 asks what a million-peer registry actually *costs*; the
//! [`MemoryFootprint`] trait answers in estimated heap bytes, broken down
//! by component ([`FootprintBreakdown`]): roster bookkeeping, per-peer
//! statistics windows, advertisements, content holdings, gossip views,
//! and lifecycle scripts.
//!
//! Estimates are **length-based**, not capacity-based: they count live
//! elements times their inline size plus owned string bytes, so the
//! number tracks the data a layout change could shrink rather than
//! allocator slack (which `psim profile` reports separately as the
//! process RSS proxy). Shared allocations (`Arc<str>` names) are counted
//! once per holder — a deliberate, slightly conservative overestimate
//! that keeps the arithmetic local. Totals feed the `registry.bytes.*`
//! gauges the broker publishes on its gossip cadence, which the
//! time-series layer turns into `registry_bytes` / `bytes_per_peer`
//! curves.

use std::ops::{Add, AddAssign};

/// Estimated heap bytes of one overlay actor, by component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FootprintBreakdown {
    /// Roster bookkeeping: entry slots, id indexes, name interning.
    pub roster: u64,
    /// Per-peer statistics: windowed ratio rings, reported snapshots.
    pub stats: u64,
    /// Peer-advertisement heap (owned name strings).
    pub ads: u64,
    /// Content directory: holdings, content advertisements, transfer state.
    pub content: u64,
    /// Gossip state: remote candidate views learned from peer brokers.
    pub gossip: u64,
    /// Lifecycle scripts: pre-sampled session plans.
    pub scripts: u64,
}

impl FootprintBreakdown {
    /// Sum over all components.
    pub fn total(&self) -> u64 {
        self.roster + self.stats + self.ads + self.content + self.gossip + self.scripts
    }

    /// `(component name, bytes)` pairs in declaration order — the shape
    /// gauge publishers and report renderers iterate.
    pub fn components(&self) -> [(&'static str, u64); 6] {
        [
            ("roster", self.roster),
            ("stats", self.stats),
            ("ads", self.ads),
            ("content", self.content),
            ("gossip", self.gossip),
            ("scripts", self.scripts),
        ]
    }
}

impl Add for FootprintBreakdown {
    type Output = FootprintBreakdown;
    fn add(mut self, rhs: FootprintBreakdown) -> FootprintBreakdown {
        self += rhs;
        self
    }
}

impl AddAssign for FootprintBreakdown {
    fn add_assign(&mut self, rhs: FootprintBreakdown) {
        self.roster += rhs.roster;
        self.stats += rhs.stats;
        self.ads += rhs.ads;
        self.content += rhs.content;
        self.gossip += rhs.gossip;
        self.scripts += rhs.scripts;
    }
}

/// Reports an estimate of the heap bytes a value holds, by component.
pub trait MemoryFootprint {
    /// Estimated heap bytes, broken down per [`FootprintBreakdown`].
    fn memory_footprint(&self) -> FootprintBreakdown;
}

/// Length-based estimate of a slice-backed container's element storage.
pub fn slots_estimate<T>(len: usize) -> u64 {
    (len * std::mem::size_of::<T>()) as u64
}

/// Length-based estimate of a map's entry storage (key + value inline
/// sizes per live entry; hash-table overhead and slack are ignored).
pub fn map_estimate<K, V>(len: usize) -> u64 {
    (len * (std::mem::size_of::<K>() + std::mem::size_of::<V>())) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_components_agree() {
        let b = FootprintBreakdown {
            roster: 1,
            stats: 2,
            ads: 3,
            content: 4,
            gossip: 5,
            scripts: 6,
        };
        assert_eq!(b.total(), 21);
        let sum: u64 = b.components().iter().map(|(_, v)| v).sum();
        assert_eq!(sum, b.total());
        assert_eq!(b.components()[0].0, "roster");
    }

    #[test]
    fn breakdowns_add_componentwise() {
        let a = FootprintBreakdown {
            roster: 1,
            scripts: 10,
            ..FootprintBreakdown::default()
        };
        let b = FootprintBreakdown {
            roster: 2,
            gossip: 5,
            ..FootprintBreakdown::default()
        };
        let c = a + b;
        assert_eq!(c.roster, 3);
        assert_eq!(c.gossip, 5);
        assert_eq!(c.scripts, 10);
        assert_eq!(c.total(), 18);
    }

    #[test]
    fn estimates_scale_with_length() {
        assert_eq!(slots_estimate::<u64>(4), 32);
        assert_eq!(map_estimate::<u32, u32>(3), 24);
        assert_eq!(slots_estimate::<u64>(0), 0);
    }
}
