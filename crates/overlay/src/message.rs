//! The overlay's wire protocol.
//!
//! One message enum covers all primitives: membership, discovery,
//! statistics, instant messaging, file transfer, and task management.
//! Wire sizes approximate serialized JXTA messages; service classes encode
//! which messages wake the destination application (see
//! [`netsim::engine::ServiceClass`]).

use std::sync::Arc;

use netsim::engine::{Payload, ServiceClass};
use netsim::time::SimTime;

use crate::advertisement::PeerAdvertisement;
use crate::filetransfer::FileMeta;
use crate::id::{GroupId, PeerId, TaskId, TransferId};
use crate::stats::StatsSnapshot;
use crate::task::TaskSpec;

/// Every message exchanged on the overlay.
#[derive(Debug, Clone, PartialEq)]
pub enum OverlayMsg {
    // ---- membership & discovery -------------------------------------
    /// Client → broker: join the overlay with a peer advertisement.
    Join(PeerAdvertisement),
    /// Broker → client: membership confirmed, with the assigned peergroup.
    JoinAck {
        /// The group the peer was placed in.
        group: GroupId,
    },
    /// Client → broker: leave the overlay.
    Leave {
        /// The departing peer.
        peer: PeerId,
    },
    /// Client → broker: ask for the current peer roster.
    DiscoverPeers,
    /// Broker → client: the roster.
    DiscoverPeersResponse {
        /// Cached, unexpired advertisements.
        adverts: Vec<PeerAdvertisement>,
    },
    /// Periodic client → broker statistics report.
    StatsReport {
        /// The reporting peer.
        peer: PeerId,
        /// Its self-measured statistics.
        snapshot: StatsSnapshot,
    },

    // ---- instant communication ---------------------------------------
    /// Peer ↔ peer instant message. The body is shared (`Arc<str>`) so a
    /// broadcast to N peers bumps a refcount N times instead of allocating
    /// N copies of the text.
    Instant {
        /// Message body.
        text: Arc<str>,
    },
    /// Liveness probe.
    Ping {
        /// Echo nonce.
        nonce: u64,
        /// Send timestamp, echoed back for RTT measurement.
        sent_at: SimTime,
    },
    /// Liveness reply.
    Pong {
        /// Echoed nonce.
        nonce: u64,
        /// The original send timestamp.
        sent_at: SimTime,
    },

    // ---- file transfer -------------------------------------------------
    /// Sender → peer: announces a transfer ("petition").
    FilePetition {
        /// Transfer session.
        transfer: TransferId,
        /// File metadata.
        file: FileMeta,
        /// Number of parts the file is split into.
        num_parts: u32,
        /// When the petition left the sender (for petition-time measurement).
        sent_at: SimTime,
    },
    /// Peer → sender: ready (or refusing) to receive.
    PetitionAck {
        /// Transfer session.
        transfer: TransferId,
        /// Whether the peer accepts the transfer.
        accepted: bool,
        /// Original petition send time (echoed).
        petition_sent_at: SimTime,
        /// When the peer's application actually handled the petition.
        handled_at: SimTime,
    },
    /// Sender → peer: one file part. `size` bytes of payload.
    FilePart {
        /// Transfer session.
        transfer: TransferId,
        /// Part index, 0-based.
        index: u32,
        /// Payload bytes in this part.
        size: u64,
    },
    /// Peer → sender: part received correctly; ready for the next.
    PartConfirm {
        /// Transfer session.
        transfer: TransferId,
        /// Confirmed part index.
        index: u32,
    },
    /// Sender → peer: all parts sent and confirmed.
    TransferComplete {
        /// Transfer session.
        transfer: TransferId,
    },
    /// Either side: transfer aborted.
    TransferCancel {
        /// Transfer session.
        transfer: TransferId,
    },

    // ---- content sharing & file request ---------------------------------
    /// Client → broker: announce a locally held file.
    PublishContent(crate::advertisement::ContentAdvertisement),
    /// Client → broker: browse published content by substring.
    DiscoverContent {
        /// Substring the content name must contain (empty = everything).
        pattern: String,
    },
    /// Broker → client: matching content advertisements.
    DiscoverContentResponse {
        /// Matching, unexpired advertisements.
        adverts: Vec<crate::advertisement::ContentAdvertisement>,
    },
    /// Client → broker: ask for a file by name; the broker selects an owner
    /// peer and instructs it to send.
    FileRequest {
        /// The requesting peer.
        requester: PeerId,
        /// The requested file's name.
        name: String,
    },
    /// Broker → owner peer: send `file` to `to_node`.
    TransferInstruction {
        /// Destination host.
        to_node: netsim::node::NodeId,
        /// What to send.
        file: FileMeta,
        /// Number of parts to split into.
        num_parts: u32,
    },
    /// Owner peer → broker: outcome of an instructed transfer.
    TransferReport {
        /// The transfer session.
        transfer: TransferId,
        /// Whether it completed.
        ok: bool,
        /// Observed duration, seconds.
        elapsed_secs: f64,
        /// Bytes moved.
        bytes: u64,
    },

    // ---- client-submitted jobs -------------------------------------------
    /// Client → broker: run this job somewhere (the broker selects the
    /// executor through its selection model).
    JobSubmit {
        /// The submitting peer (gets the result).
        submitter: PeerId,
        /// Compute demand, giga-ops.
        work_gops: f64,
        /// Input to ship to the executor first (0 = none).
        input_bytes: u64,
        /// Parts for the input shipment.
        input_parts: u32,
        /// Job label.
        label: String,
    },
    /// Broker → submitter: the job finished.
    JobDone {
        /// Job label (echoed).
        label: String,
        /// Whether execution succeeded.
        success: bool,
        /// Submission-to-result seconds.
        total_secs: f64,
    },

    // ---- broker federation ------------------------------------------------
    /// Broker → broker: periodic roster exchange so each governor can
    /// select among peers registered at other brokers (the platform has
    /// several brokers acting as governors; nozomi was "one of the
    /// brokers").
    BrokerGossip {
        /// The sending broker's host.
        from_broker: netsim::node::NodeId,
        /// When the sender took this roster snapshot, so the receiver can
        /// apply its staleness window.
        sent_at: SimTime,
        /// Candidate views of the sender's registered peers.
        roster: Vec<crate::selector::CandidateView>,
    },
    /// Broker → broker: a `Selected` file petition the origin broker could
    /// not place locally, handed to a fellow broker under a hop budget.
    PetitionForward {
        /// The broker the petition originated at (excluded from further
        /// hops so forwards never boomerang).
        origin: netsim::node::NodeId,
        /// Remaining broker-to-broker hops, this delivery included.
        hops_left: u32,
        /// File size in bytes.
        size_bytes: u64,
        /// Parts to split the file into.
        num_parts: u32,
        /// Label recorded with the transfer.
        label: String,
        /// When the command was first enqueued at the origin (petition
        /// latency is measured from here, hops included).
        enqueued_at: SimTime,
    },

    // ---- streaming on demand ---------------------------------------------
    /// Viewer → owner peer: send me this piece of the stream.
    PieceRequest {
        /// 0-based piece index.
        piece: u32,
    },
    /// Owner peer → viewer: one stream piece. `size` bytes of payload, so
    /// the owner's access link serializes the delivery.
    Piece {
        /// 0-based piece index (echoed).
        piece: u32,
        /// Payload bytes in this piece.
        size: u64,
    },

    // ---- task management ------------------------------------------------
    /// Broker → peer: offer an executable task.
    TaskOffer {
        /// The task.
        task: TaskSpec,
        /// Offer timestamp.
        sent_at: SimTime,
    },
    /// Peer → broker: task accepted.
    TaskAccept {
        /// The accepted task.
        task: TaskId,
    },
    /// Peer → broker: task rejected.
    TaskReject {
        /// The rejected task.
        task: TaskId,
    },
    /// Peer → broker: execution finished.
    TaskResult {
        /// The finished task.
        task: TaskId,
        /// Whether execution succeeded.
        success: bool,
        /// Pure execution time on the peer, seconds.
        exec_secs: f64,
    },
}

impl Payload for OverlayMsg {
    fn wire_size(&self) -> u64 {
        match self {
            OverlayMsg::Join(adv) => adv.wire_size(),
            OverlayMsg::JoinAck { .. } => 32,
            OverlayMsg::Leave { .. } => 24,
            OverlayMsg::DiscoverPeers => 16,
            OverlayMsg::DiscoverPeersResponse { adverts } => {
                16 + adverts.iter().map(|a| a.wire_size()).sum::<u64>()
            }
            OverlayMsg::StatsReport { snapshot, .. } => 24 + snapshot.wire_size(),
            OverlayMsg::Instant { text } => 24 + text.len() as u64,
            OverlayMsg::Ping { .. } | OverlayMsg::Pong { .. } => 32,
            OverlayMsg::FilePetition { file, .. } => 64 + file.wire_size(),
            OverlayMsg::PetitionAck { .. } => 48,
            OverlayMsg::FilePart { size, .. } => 32 + size,
            OverlayMsg::PartConfirm { .. } => 28,
            OverlayMsg::TransferComplete { .. } => 24,
            OverlayMsg::TransferCancel { .. } => 24,
            OverlayMsg::TaskOffer { task, .. } => 16 + task.wire_size(),
            OverlayMsg::TaskAccept { .. } | OverlayMsg::TaskReject { .. } => 24,
            OverlayMsg::TaskResult { .. } => 40,
            OverlayMsg::PublishContent(adv) => adv.wire_size(),
            OverlayMsg::DiscoverContent { pattern } => 24 + pattern.len() as u64,
            OverlayMsg::DiscoverContentResponse { adverts } => {
                16 + adverts.iter().map(|a| a.wire_size()).sum::<u64>()
            }
            OverlayMsg::FileRequest { name, .. } => 32 + name.len() as u64,
            OverlayMsg::TransferInstruction { file, .. } => 40 + file.wire_size(),
            OverlayMsg::TransferReport { .. } => 48,
            OverlayMsg::JobSubmit { label, .. } => 56 + label.len() as u64,
            OverlayMsg::JobDone { label, .. } => 40 + label.len() as u64,
            OverlayMsg::BrokerGossip { roster, .. } => {
                24 + roster
                    .iter()
                    .map(|c| 200 + c.name.len() as u64)
                    .sum::<u64>()
            }
            OverlayMsg::PetitionForward { label, .. } => 64 + label.len() as u64,
            OverlayMsg::PieceRequest { .. } => 24,
            OverlayMsg::Piece { size, .. } => 32 + size,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            OverlayMsg::Join(_) => "join",
            OverlayMsg::JoinAck { .. } => "join-ack",
            OverlayMsg::Leave { .. } => "leave",
            OverlayMsg::DiscoverPeers => "discover",
            OverlayMsg::DiscoverPeersResponse { .. } => "discover-resp",
            OverlayMsg::StatsReport { .. } => "stats",
            OverlayMsg::Instant { .. } => "instant",
            OverlayMsg::Ping { .. } => "ping",
            OverlayMsg::Pong { .. } => "pong",
            OverlayMsg::FilePetition { .. } => "petition",
            OverlayMsg::PetitionAck { .. } => "petition-ack",
            OverlayMsg::FilePart { .. } => "part",
            OverlayMsg::PartConfirm { .. } => "confirm",
            OverlayMsg::TransferComplete { .. } => "complete",
            OverlayMsg::TransferCancel { .. } => "cancel",
            OverlayMsg::TaskOffer { .. } => "task-offer",
            OverlayMsg::TaskAccept { .. } => "task-accept",
            OverlayMsg::TaskReject { .. } => "task-reject",
            OverlayMsg::TaskResult { .. } => "task-result",
            OverlayMsg::PublishContent(_) => "publish",
            OverlayMsg::DiscoverContent { .. } => "discover-content",
            OverlayMsg::DiscoverContentResponse { .. } => "content-resp",
            OverlayMsg::FileRequest { .. } => "file-request",
            OverlayMsg::TransferInstruction { .. } => "instruct",
            OverlayMsg::TransferReport { .. } => "xfer-report",
            OverlayMsg::JobSubmit { .. } => "job-submit",
            OverlayMsg::JobDone { .. } => "job-done",
            OverlayMsg::BrokerGossip { .. } => "gossip",
            OverlayMsg::PetitionForward { .. } => "fwd-petition",
            OverlayMsg::PieceRequest { .. } => "piece-request",
            OverlayMsg::Piece { .. } => "piece",
        }
    }

    fn service_class(&self) -> ServiceClass {
        match self {
            // Messages that wake the destination application.
            OverlayMsg::Join(_)
            | OverlayMsg::Leave { .. }
            | OverlayMsg::DiscoverPeers
            | OverlayMsg::Instant { .. }
            | OverlayMsg::Ping { .. }
            | OverlayMsg::FilePetition { .. }
            | OverlayMsg::TransferInstruction { .. }
            | OverlayMsg::PieceRequest { .. }
            | OverlayMsg::TaskOffer { .. } => ServiceClass::Wakeup,
            // Hot-path continuation traffic.
            OverlayMsg::JoinAck { .. }
            | OverlayMsg::DiscoverPeersResponse { .. }
            | OverlayMsg::StatsReport { .. }
            | OverlayMsg::Pong { .. }
            | OverlayMsg::PetitionAck { .. }
            | OverlayMsg::FilePart { .. }
            | OverlayMsg::PartConfirm { .. }
            | OverlayMsg::TransferComplete { .. }
            | OverlayMsg::TransferCancel { .. }
            | OverlayMsg::TaskAccept { .. }
            | OverlayMsg::TaskReject { .. }
            | OverlayMsg::TaskResult { .. }
            | OverlayMsg::PublishContent(_)
            | OverlayMsg::DiscoverContent { .. }
            | OverlayMsg::DiscoverContentResponse { .. }
            | OverlayMsg::FileRequest { .. }
            | OverlayMsg::TransferReport { .. }
            | OverlayMsg::JobSubmit { .. }
            | OverlayMsg::JobDone { .. }
            | OverlayMsg::BrokerGossip { .. }
            | OverlayMsg::PetitionForward { .. }
            | OverlayMsg::Piece { .. } => ServiceClass::Fast,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::IdGenerator;

    #[test]
    fn file_parts_dominate_wire_size() {
        let mut g = IdGenerator::new(1);
        let part = OverlayMsg::FilePart {
            transfer: TransferId::generate(&mut g),
            index: 0,
            size: 6 * 1024 * 1024,
        };
        assert!(part.wire_size() > 6_000_000);
        let confirm = OverlayMsg::PartConfirm {
            transfer: TransferId::generate(&mut g),
            index: 0,
        };
        assert!(confirm.wire_size() < 100);
    }

    #[test]
    fn petition_wakes_the_application() {
        let mut g = IdGenerator::new(2);
        let petition = OverlayMsg::FilePetition {
            transfer: TransferId::generate(&mut g),
            file: FileMeta {
                content: crate::id::ContentId::generate(&mut g),
                name: "f".into(),
                size_bytes: 1,
            },
            num_parts: 1,
            sent_at: SimTime::ZERO,
        };
        assert_eq!(petition.service_class(), ServiceClass::Wakeup);
        let part = OverlayMsg::FilePart {
            transfer: TransferId::generate(&mut g),
            index: 1,
            size: 100,
        };
        assert_eq!(part.service_class(), ServiceClass::Fast);
    }

    #[test]
    fn kinds_are_stable_labels() {
        assert_eq!(OverlayMsg::DiscoverPeers.kind(), "discover");
        assert_eq!(OverlayMsg::Instant { text: "hi".into() }.kind(), "instant");
    }

    #[test]
    fn discover_response_size_scales_with_roster() {
        let mut g = IdGenerator::new(3);
        let adv = PeerAdvertisement {
            peer: PeerId::generate(&mut g),
            node: netsim::node::NodeId(0),
            name: "x".into(),
            cpu_gops: 1.0,
            accepts_tasks: true,
            published: SimTime::ZERO,
            lifetime: crate::advertisement::DEFAULT_LIFETIME,
        };
        let small = OverlayMsg::DiscoverPeersResponse {
            adverts: vec![adv.clone()],
        };
        let large = OverlayMsg::DiscoverPeersResponse {
            adverts: vec![adv.clone(); 10],
        };
        assert!(large.wire_size() > 5 * small.wire_size());
    }
}
