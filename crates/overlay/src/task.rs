//! Executable-task management (paper §3: "an important place in the
//! primitives is given to functionalities related to the management of
//! executable tasks").

use netsim::time::SimTime;

use crate::id::{TaskId, TransferId};

/// Description of one executable task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Task identity.
    pub id: TaskId,
    /// Human-readable label (used in experiment reports).
    pub label: String,
    /// Compute demand in giga-operations.
    pub work_gops: f64,
    /// Size of the input file that must be shipped to the executing peer
    /// before the task can run; 0 means the task carries its own tiny input.
    pub input_bytes: u64,
}

impl TaskSpec {
    /// Approximate wire size of the task description itself (the input file
    /// travels separately through the file-transfer primitives).
    pub fn wire_size(&self) -> u64 {
        64 + self.label.len() as u64
    }
}

/// Lifecycle state of a task as tracked by the broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPhase {
    /// Waiting for its input file to reach the executing peer.
    ShippingInput,
    /// Offered to the peer; awaiting accept/reject.
    Offered,
    /// Accepted and executing.
    Running,
    /// Finished successfully.
    Completed,
    /// Rejected by the peer or failed during execution.
    Failed,
}

/// Broker-side tracking entry for one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskTracking {
    /// The task.
    pub spec: TaskSpec,
    /// Executing peer's simulated host.
    pub node: netsim::node::NodeId,
    /// Current phase.
    pub phase: TaskPhase,
    /// When the broker decided to run this task (selection instant).
    pub submitted_at: SimTime,
    /// Input transfer session, when the task ships an input file.
    pub input_transfer: Option<TransferId>,
    /// When the input finished arriving at the peer.
    pub input_done_at: Option<SimTime>,
    /// When the offer was sent.
    pub offered_at: Option<SimTime>,
    /// When the peer accepted.
    pub accepted_at: Option<SimTime>,
    /// When the result arrived back at the broker.
    pub result_at: Option<SimTime>,
    /// Pure execution time reported by the peer, seconds.
    pub exec_secs: Option<f64>,
}

impl TaskTracking {
    /// Creates tracking for a freshly submitted task.
    pub fn new(spec: TaskSpec, node: netsim::node::NodeId, now: SimTime) -> Self {
        let phase = if spec.input_bytes > 0 {
            TaskPhase::ShippingInput
        } else {
            TaskPhase::Offered
        };
        TaskTracking {
            spec,
            node,
            phase,
            submitted_at: now,
            input_transfer: None,
            input_done_at: None,
            offered_at: None,
            accepted_at: None,
            result_at: None,
            exec_secs: None,
        }
    }

    /// End-to-end makespan (submission → result), if finished.
    pub fn total_secs(&self) -> Option<f64> {
        self.result_at
            .map(|r| r.duration_since(self.submitted_at).as_secs_f64())
    }

    /// Time spent shipping the input, if any.
    pub fn transfer_secs(&self) -> Option<f64> {
        self.input_done_at
            .map(|d| d.duration_since(self.submitted_at).as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::IdGenerator;
    use netsim::node::NodeId;
    use netsim::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn spec(input: u64) -> TaskSpec {
        let mut g = IdGenerator::new(1);
        TaskSpec {
            id: TaskId::generate(&mut g),
            label: "render".into(),
            work_gops: 120.0,
            input_bytes: input,
        }
    }

    #[test]
    fn initial_phase_depends_on_input() {
        let with_input = TaskTracking::new(spec(1 << 20), NodeId(1), t(0));
        assert_eq!(with_input.phase, TaskPhase::ShippingInput);
        let without = TaskTracking::new(spec(0), NodeId(1), t(0));
        assert_eq!(without.phase, TaskPhase::Offered);
    }

    #[test]
    fn durations_computed_from_timestamps() {
        let mut tr = TaskTracking::new(spec(1 << 20), NodeId(2), t(10));
        assert_eq!(tr.total_secs(), None);
        tr.input_done_at = Some(t(70));
        tr.result_at = Some(t(130));
        assert_eq!(tr.transfer_secs(), Some(60.0));
        assert_eq!(tr.total_secs(), Some(120.0));
    }

    #[test]
    fn wire_size_reasonable() {
        assert!(spec(0).wire_size() < 1000);
    }
}
