//! The peer-selection hook.
//!
//! The broker delegates "which peer should get this work?" to a
//! [`PeerSelector`]. The overlay ships only the trivial baselines; the real
//! models (economic scheduling, data evaluator, user preference) live in the
//! `peer-selection` crate and implement this trait. Keeping the trait here
//! lets the substrate stay ignorant of the contribution built on top of it.

use std::sync::Arc;

use netsim::node::NodeId;
use netsim::time::SimTime;

use crate::id::PeerId;
use crate::stats::StatsSnapshot;

/// What the broker has learned about one peer from past interactions.
///
/// This is *observed* history (latencies, throughputs the broker measured
/// itself), complementing the peer-reported [`StatsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionHistory {
    /// EWMA of petition→ack latency, seconds.
    pub ewma_petition_secs: Option<f64>,
    /// EWMA of observed file-transfer throughput, bytes/second.
    pub ewma_throughput_bps: Option<f64>,
    /// EWMA of observed pure execution rate, gops/second.
    pub ewma_exec_gops_per_sec: Option<f64>,
    /// Completed transfers to this peer.
    pub transfers_completed: u64,
    /// Cancelled transfers to this peer.
    pub transfers_cancelled: u64,
    /// Bytes currently queued (sent or scheduled) to this peer.
    pub queued_bytes: u64,
    /// Broker's estimate of when the peer finishes its current backlog.
    pub busy_until: SimTime,
}

impl InteractionHistory {
    /// History for a never-before-used peer.
    pub fn empty() -> Self {
        InteractionHistory {
            ewma_petition_secs: None,
            ewma_throughput_bps: None,
            ewma_exec_gops_per_sec: None,
            transfers_completed: 0,
            transfers_cancelled: 0,
            queued_bytes: 0,
            busy_until: SimTime::ZERO,
        }
    }

    /// Folds a new petition-latency observation into the EWMA.
    pub fn observe_petition(&mut self, secs: f64, alpha: f64) {
        fold(&mut self.ewma_petition_secs, secs, alpha);
    }

    /// Folds a new throughput observation into the EWMA.
    pub fn observe_throughput(&mut self, bps: f64, alpha: f64) {
        fold(&mut self.ewma_throughput_bps, bps, alpha);
    }

    /// Folds a new execution-rate observation into the EWMA.
    pub fn observe_exec_rate(&mut self, gops_per_sec: f64, alpha: f64) {
        fold(&mut self.ewma_exec_gops_per_sec, gops_per_sec, alpha);
    }
}

fn fold(slot: &mut Option<f64>, value: f64, alpha: f64) {
    let alpha = alpha.clamp(0.0, 1.0);
    *slot = Some(match *slot {
        None => value,
        Some(old) => alpha * value + (1.0 - alpha) * old,
    });
}

/// One candidate peer as the selector sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateView {
    /// Overlay identity.
    pub peer: PeerId,
    /// Simulated host.
    pub node: NodeId,
    /// Hostname, interned at admission — building a roster or recording a
    /// selection clones a refcount, never a string buffer.
    pub name: Arc<str>,
    /// Advertised CPU rate, gops.
    pub cpu_gops: f64,
    /// Latest peer-reported statistics.
    pub snapshot: StatsSnapshot,
    /// Broker-observed interaction history.
    pub history: InteractionHistory,
}

/// Why a peer is being selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purpose {
    /// Destination for a file transfer of roughly this many bytes.
    FileTransfer {
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Executor for a task of roughly this much work.
    TaskExecution {
        /// Compute demand in giga-ops.
        work_gops: u64,
        /// Input bytes that must be shipped first.
        input_bytes: u64,
    },
}

/// One selection request.
#[derive(Debug, Clone)]
pub struct SelectionRequest<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// What the chosen peer will be asked to do.
    pub purpose: Purpose,
    /// The candidate set (never empty when the broker calls).
    pub candidates: &'a [CandidateView],
}

/// Outcome feedback delivered to the selector after the work finishes,
/// letting adaptive models learn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionOutcome {
    /// The peer that did the work.
    pub node: NodeId,
    /// Whether it completed successfully.
    pub success: bool,
    /// Observed end-to-end seconds.
    pub elapsed_secs: f64,
    /// Bytes moved (0 for pure compute).
    pub bytes: u64,
}

/// A peer-selection policy.
pub trait PeerSelector: Send {
    /// Human-readable model name (printed in reports).
    fn name(&self) -> &str;

    /// Picks a candidate (by index into `req.candidates`), or `None` to
    /// refuse (no viable peer).
    fn select(&mut self, req: &SelectionRequest<'_>) -> Option<usize>;

    /// Per-candidate cost estimates for observability, parallel to
    /// `req.candidates` (lower = better; non-finite = ineligible). Models
    /// that don't score candidates return `None` (the default). Only
    /// consulted when tracing is enabled, so implementations may recompute.
    fn candidate_costs(&mut self, _req: &SelectionRequest<'_>) -> Option<Vec<f64>> {
        None
    }

    /// Feedback after the selected work finished (default: ignored).
    fn on_outcome(&mut self, _outcome: &SelectionOutcome) {}
}

/// Baseline: uniformly random choice ("blind" selection).
#[derive(Debug)]
pub struct RandomSelector {
    rng: netsim::rng::SimRng,
}

impl RandomSelector {
    /// Creates the baseline with its own seeded stream.
    pub fn new(seed: u64) -> Self {
        RandomSelector {
            rng: netsim::rng::SimRng::new(seed),
        }
    }
}

impl PeerSelector for RandomSelector {
    fn name(&self) -> &str {
        "random"
    }

    fn select(&mut self, req: &SelectionRequest<'_>) -> Option<usize> {
        if req.candidates.is_empty() {
            None
        } else {
            Some(self.rng.below(req.candidates.len() as u64) as usize)
        }
    }
}

/// Baseline: strict round-robin over the candidate list.
#[derive(Debug, Default)]
pub struct RoundRobinSelector {
    next: usize,
}

impl RoundRobinSelector {
    /// Creates the baseline starting at the first candidate.
    pub fn new() -> Self {
        RoundRobinSelector::default()
    }
}

impl PeerSelector for RoundRobinSelector {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn select(&mut self, req: &SelectionRequest<'_>) -> Option<usize> {
        if req.candidates.is_empty() {
            return None;
        }
        let i = self.next % req.candidates.len();
        self.next = self.next.wrapping_add(1);
        Some(i)
    }
}

/// Factory producing a fresh selector per replication (selectors are
/// stateful and not clonable). Campaign drivers call it once per run,
/// passing that run's seed so stochastic selectors draw independent
/// streams across replications.
pub type SelectorFactory = Box<dyn Fn(u64) -> Box<dyn PeerSelector> + Sync>;

/// Identity of a selection model a campaign can sweep over.
///
/// This is the *axis value*, not the implementation: the overlay stays
/// ignorant of the concrete models (they live in the `peer-selection`
/// crate), but grid specs, CLIs, and reports need one canonical spelling
/// per model. `Blind` means "no selector installed" — the broker
/// broadcasts instead of choosing, the paper's Figs 2–5 mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// No selection: broadcast / scripted targets only.
    Blind,
    /// Economic scheduling model (Ernemann et al.).
    Economic,
    /// Data-evaluator model with equal criterion weights (Yu et al.).
    SamePriority,
    /// User-preference model favouring the quickest peer.
    QuickPeer,
    /// Uniform-random baseline.
    Random,
    /// UCB1 bandit over observed transfer outcomes (extension).
    Ucb1,
    /// ε-greedy bandit (extension).
    EpsGreedy,
}

impl ModelKind {
    /// Every model, in canonical (grid-expansion and CLI listing) order.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::Blind,
        ModelKind::Economic,
        ModelKind::SamePriority,
        ModelKind::QuickPeer,
        ModelKind::Random,
        ModelKind::Ucb1,
        ModelKind::EpsGreedy,
    ];

    /// The canonical spelling used by CLIs, CSV columns, and grid specs.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Blind => "blind",
            ModelKind::Economic => "economic",
            ModelKind::SamePriority => "same-priority",
            ModelKind::QuickPeer => "quick-peer",
            ModelKind::Random => "random",
            ModelKind::Ucb1 => "ucb1",
            ModelKind::EpsGreedy => "eps-greedy",
        }
    }

    /// Parses a canonical spelling back into the axis value. Also accepts
    /// `evaluator`, the CLI's historical spelling of the data-evaluator
    /// model in same-priority mode.
    pub fn parse(name: &str) -> Option<ModelKind> {
        if name == "evaluator" {
            return Some(ModelKind::SamePriority);
        }
        ModelKind::ALL.into_iter().find(|m| m.name() == name)
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::IdGenerator;

    fn candidates(n: usize) -> Vec<CandidateView> {
        let mut g = IdGenerator::new(5);
        (0..n)
            .map(|i| CandidateView {
                peer: PeerId::generate(&mut g),
                node: NodeId(i as u32),
                name: format!("peer{i}").into(),
                cpu_gops: 1.0,
                snapshot: StatsSnapshot::empty(1.0),
                history: InteractionHistory::empty(),
            })
            .collect()
    }

    fn req(c: &[CandidateView]) -> SelectionRequest<'_> {
        SelectionRequest {
            now: SimTime::ZERO,
            purpose: Purpose::FileTransfer { bytes: 1 << 20 },
            candidates: c,
        }
    }

    #[test]
    fn ewma_folding() {
        let mut h = InteractionHistory::empty();
        h.observe_petition(2.0, 0.5);
        assert_eq!(h.ewma_petition_secs, Some(2.0));
        h.observe_petition(4.0, 0.5);
        assert_eq!(h.ewma_petition_secs, Some(3.0));
        h.observe_throughput(1e6, 0.3);
        assert_eq!(h.ewma_throughput_bps, Some(1e6));
        h.observe_exec_rate(0.5, 1.0);
        assert_eq!(h.ewma_exec_gops_per_sec, Some(0.5));
    }

    #[test]
    fn random_selector_in_bounds_and_covers() {
        let c = candidates(5);
        let mut s = RandomSelector::new(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let i = s.select(&req(&c)).unwrap();
            assert!(i < 5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&x| x));
        assert_eq!(s.name(), "random");
    }

    #[test]
    fn random_selector_empty_candidates() {
        let mut s = RandomSelector::new(2);
        assert_eq!(s.select(&req(&[])), None);
    }

    #[test]
    fn round_robin_cycles() {
        let c = candidates(3);
        let mut s = RoundRobinSelector::new();
        let picks: Vec<usize> = (0..7).map(|_| s.select(&req(&c)).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(s.select(&req(&[])), None);
    }

    #[test]
    fn model_kind_names_round_trip_and_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for kind in ModelKind::ALL {
            assert!(seen.insert(kind.name()), "duplicate name {}", kind.name());
            assert_eq!(ModelKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(ModelKind::parse("no-such-model"), None);
    }

    #[test]
    fn evaluator_alias_parses_to_same_priority() {
        assert_eq!(ModelKind::parse("evaluator"), Some(ModelKind::SamePriority));
    }
}
