//! Broker federation: typed construction of a multi-broker overlay.
//!
//! The paper's architecture has a single broker — a scalability ceiling
//! and a single point of failure. This module turns a set of broker
//! hosts into a *federation*: every client is assigned a home broker by
//! a [`HomingPolicy`], brokers exchange rosters on a gossip cadence with
//! a bounded staleness window, petitions that find no local candidate
//! are forwarded to a fellow broker under a hop budget, and a scripted
//! broker outage exercises heartbeat-based liveness plus client
//! re-homing.
//!
//! [`FederationBuilder`] is the only way to wire these knobs into a
//! [`BrokerConfig`]: the raw fields (`peer_brokers`, `gossip_interval`,
//! the staleness bound, the forward budget, the outage script) are
//! `pub(crate)`, so invalid combinations — zero brokers, a staleness
//! bound shorter than the gossip interval that feeds it — are
//! unrepresentable outside this crate. The builder mirrors the
//! `ScenarioBuilder` pattern in the workloads crate: `#[must_use]`
//! setters, validation at [`FederationBuilder::build`], and a typed
//! [`FederationError`] for every rejection.

use netsim::node::NodeId;
use netsim::time::SimDuration;

use crate::broker::BrokerConfig;

/// How many virtual points each broker contributes to the consistent
/// hash ring: enough to smooth assignment without bloating lookups.
const RING_POINTS_PER_BROKER: usize = 16;

/// SplitMix64: the ring and client placement hash. Local on purpose —
/// the overlay crate must not depend on workloads' rng helpers.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How clients are assigned a home broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomingPolicy {
    /// Region `r` homes on broker `r mod brokers`: co-located control
    /// traffic, matching the paper's per-testbed broker placement.
    RegionAffinity,
    /// Consistent hashing of the client's node id onto a ring of
    /// broker points: load spreads independently of geography and
    /// only `1/n` of clients re-home when a broker set changes.
    ConsistentHash,
}

/// Failover detection knobs a re-homing client runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverPolicy {
    /// How often a connected client pings its home broker.
    pub probe_interval: SimDuration,
    /// Silence longer than this (no ack, pong, or data from the home)
    /// makes the client declare the broker dead and re-home.
    pub probe_timeout: SimDuration,
}

impl Default for FailoverPolicy {
    fn default() -> Self {
        FailoverPolicy {
            probe_interval: SimDuration::from_secs(30),
            probe_timeout: SimDuration::from_secs(90),
        }
    }
}

/// Why a [`FederationBuilder::build`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FederationError {
    /// The broker list was empty; a federation needs at least one.
    NoBrokers,
    /// The gossip interval was zero virtual time: the roster exchange
    /// would never run (or spin at t=0).
    NonPositiveGossip,
    /// The staleness bound was shorter than the gossip interval, so
    /// every remote view would expire before the next gossip round
    /// could refresh it.
    StalenessBelowGossip {
        /// The rejected staleness bound.
        staleness: SimDuration,
        /// The gossip interval it must cover.
        gossip: SimDuration,
    },
    /// The scripted outage named a broker index outside the roster.
    OutageBrokerOutOfRange {
        /// The offending broker index.
        index: usize,
        /// How many brokers the federation has.
        brokers: usize,
    },
    /// The scripted restart was at or before the crash instant.
    RestartBeforeOutage,
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederationError::NoBrokers => {
                write!(f, "a federation needs at least one broker")
            }
            FederationError::NonPositiveGossip => {
                write!(f, "gossip interval must be positive virtual time")
            }
            FederationError::StalenessBelowGossip { staleness, gossip } => write!(
                f,
                "staleness bound {:.1}s below gossip interval {:.1}s: remote views \
                 would expire before the next gossip round refreshes them",
                staleness.as_secs_f64(),
                gossip.as_secs_f64()
            ),
            FederationError::OutageBrokerOutOfRange { index, brokers } => write!(
                f,
                "outage names broker index {index} but the federation has {brokers}"
            ),
            FederationError::RestartBeforeOutage => {
                write!(f, "the scripted restart must come strictly after the crash")
            }
        }
    }
}

impl std::error::Error for FederationError {}

/// Builder for [`Federation`]: the only way to set the validated
/// federation knobs.
#[must_use]
#[derive(Debug, Clone)]
pub struct FederationBuilder {
    brokers: Vec<NodeId>,
    homing: HomingPolicy,
    gossip_interval: SimDuration,
    staleness_bound: Option<SimDuration>,
    forward_hops: u32,
    outage: Option<(usize, SimDuration, Option<SimDuration>)>,
}

impl FederationBuilder {
    /// Starts a federation over `brokers` with region-affinity homing,
    /// a 60 s gossip cadence, a 3× gossip staleness bound, and a
    /// 2-hop forward budget.
    pub fn new(brokers: Vec<NodeId>) -> Self {
        FederationBuilder {
            brokers,
            homing: HomingPolicy::RegionAffinity,
            gossip_interval: SimDuration::from_secs(60),
            staleness_bound: None,
            forward_hops: 2,
            outage: None,
        }
    }

    /// Sets the client→broker homing policy.
    pub fn homing(mut self, policy: HomingPolicy) -> Self {
        self.homing = policy;
        self
    }

    /// Sets the broker-to-broker roster gossip period.
    pub fn gossip_interval(mut self, interval: SimDuration) -> Self {
        self.gossip_interval = interval;
        self
    }

    /// Sets how old a gossiped remote view may be before selection
    /// ignores it. Defaults to 3× the gossip interval.
    pub fn staleness_bound(mut self, bound: SimDuration) -> Self {
        self.staleness_bound = Some(bound);
        self
    }

    /// Sets the cross-broker petition forward budget (0 disables
    /// forwarding; each hop is one broker-to-broker handoff).
    pub fn forward_hops(mut self, hops: u32) -> Self {
        self.forward_hops = hops;
        self
    }

    /// Scripts an outage: broker `index` crashes at `down_at` and, when
    /// `restart_at` is `Some`, comes back empty-handed at that instant.
    pub fn outage(
        mut self,
        index: usize,
        down_at: SimDuration,
        restart_at: Option<SimDuration>,
    ) -> Self {
        self.outage = Some((index, down_at, restart_at));
        self
    }

    /// Validates the configuration and produces the [`Federation`].
    pub fn build(self) -> Result<Federation, FederationError> {
        if self.brokers.is_empty() {
            return Err(FederationError::NoBrokers);
        }
        if self.gossip_interval == SimDuration::ZERO {
            return Err(FederationError::NonPositiveGossip);
        }
        let staleness = self.staleness_bound.unwrap_or(self.gossip_interval * 3);
        if staleness < self.gossip_interval {
            return Err(FederationError::StalenessBelowGossip {
                staleness,
                gossip: self.gossip_interval,
            });
        }
        if let Some((index, down_at, restart_at)) = self.outage {
            if index >= self.brokers.len() {
                return Err(FederationError::OutageBrokerOutOfRange {
                    index,
                    brokers: self.brokers.len(),
                });
            }
            if let Some(restart) = restart_at {
                if restart <= down_at {
                    return Err(FederationError::RestartBeforeOutage);
                }
            }
        }
        Ok(Federation {
            brokers: self.brokers,
            homing: self.homing,
            gossip_interval: self.gossip_interval,
            staleness_bound: staleness,
            forward_hops: self.forward_hops,
            outage: self.outage,
        })
    }
}

/// A validated broker federation: the homing oracle plus the only
/// sanctioned way to wire federation knobs into a [`BrokerConfig`].
#[derive(Debug, Clone)]
pub struct Federation {
    brokers: Vec<NodeId>,
    homing: HomingPolicy,
    gossip_interval: SimDuration,
    staleness_bound: SimDuration,
    forward_hops: u32,
    outage: Option<(usize, SimDuration, Option<SimDuration>)>,
}

impl Federation {
    /// The broker roster, in builder order.
    pub fn brokers(&self) -> &[NodeId] {
        &self.brokers
    }

    /// The validated gossip period.
    pub fn gossip_interval(&self) -> SimDuration {
        self.gossip_interval
    }

    /// The validated staleness bound (≥ gossip interval).
    pub fn staleness_bound(&self) -> SimDuration {
        self.staleness_bound
    }

    /// The petition forward budget.
    pub fn forward_hops(&self) -> u32 {
        self.forward_hops
    }

    /// Wires broker `index`'s share of the federation into `cfg`:
    /// peer roster (everyone else), gossip cadence, staleness bound,
    /// forward budget, and — only on the scripted victim — the outage.
    pub fn configure(&self, index: usize, cfg: &mut BrokerConfig) {
        cfg.peer_brokers = self
            .brokers
            .iter()
            .copied()
            .filter(|&b| b != self.brokers[index % self.brokers.len()])
            .collect();
        cfg.gossip_interval = self.gossip_interval;
        cfg.staleness_bound = Some(self.staleness_bound);
        cfg.forward_hops = self.forward_hops;
        cfg.outage = match self.outage {
            Some((victim, down_at, restart_at)) if victim == index % self.brokers.len() => {
                Some((down_at, restart_at))
            }
            _ => None,
        };
    }

    /// The preferred home broker for a client.
    pub fn home_for(&self, client: NodeId, region: usize) -> NodeId {
        self.homes_for(client, region)[0]
    }

    /// Every broker in failover-preference order for a client: the
    /// home first, then the successors a re-homing client walks. The
    /// list is a permutation of the roster, deterministic in
    /// `(client, region)` alone.
    pub fn homes_for(&self, client: NodeId, region: usize) -> Vec<NodeId> {
        let n = self.brokers.len();
        match self.homing {
            HomingPolicy::RegionAffinity => {
                (0..n).map(|k| self.brokers[(region + k) % n]).collect()
            }
            HomingPolicy::ConsistentHash => {
                // Ring points: (hash, broker index), sorted by hash.
                // Rebuilt per call — rosters are small and homing runs
                // once per client at wiring time, not per event.
                let mut ring: Vec<(u64, usize)> = Vec::with_capacity(n * RING_POINTS_PER_BROKER);
                for (i, b) in self.brokers.iter().enumerate() {
                    for p in 0..RING_POINTS_PER_BROKER {
                        let h = splitmix64(
                            (b.index() as u64)
                                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                                .wrapping_add(p as u64),
                        );
                        ring.push((h, i));
                    }
                }
                ring.sort_unstable();
                let key = splitmix64(client.index() as u64 ^ 0xFEDE_0A11);
                let start = ring.partition_point(|&(h, _)| h < key) % ring.len();
                let mut order = Vec::with_capacity(n);
                let mut seen = vec![false; n];
                for k in 0..ring.len() {
                    let (_, i) = ring[(start + k) % ring.len()];
                    if !seen[i] {
                        seen[i] = true;
                        order.push(self.brokers[i]);
                        if order.len() == n {
                            break;
                        }
                    }
                }
                order
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roster(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn build_rejects_empty_roster() {
        assert_eq!(
            FederationBuilder::new(Vec::new()).build().unwrap_err(),
            FederationError::NoBrokers
        );
    }

    #[test]
    fn build_rejects_zero_gossip() {
        let err = FederationBuilder::new(roster(2))
            .gossip_interval(SimDuration::ZERO)
            .build()
            .unwrap_err();
        assert_eq!(err, FederationError::NonPositiveGossip);
    }

    #[test]
    fn build_rejects_staleness_below_gossip() {
        let err = FederationBuilder::new(roster(2))
            .gossip_interval(SimDuration::from_secs(60))
            .staleness_bound(SimDuration::from_secs(30))
            .build()
            .unwrap_err();
        assert!(matches!(err, FederationError::StalenessBelowGossip { .. }));
    }

    #[test]
    fn build_rejects_outage_index_out_of_range() {
        let err = FederationBuilder::new(roster(2))
            .outage(2, SimDuration::from_secs(100), None)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            FederationError::OutageBrokerOutOfRange {
                index: 2,
                brokers: 2
            }
        ));
    }

    #[test]
    fn build_rejects_restart_before_crash() {
        let err = FederationBuilder::new(roster(2))
            .outage(
                0,
                SimDuration::from_secs(100),
                Some(SimDuration::from_secs(100)),
            )
            .build()
            .unwrap_err();
        assert_eq!(err, FederationError::RestartBeforeOutage);
    }

    #[test]
    fn staleness_defaults_to_three_gossip_rounds() {
        let fed = FederationBuilder::new(roster(3))
            .gossip_interval(SimDuration::from_secs(40))
            .build()
            .expect("valid");
        assert_eq!(fed.staleness_bound(), SimDuration::from_secs(120));
    }

    #[test]
    fn configure_wires_everyone_else_as_peers() {
        let fed = FederationBuilder::new(roster(3))
            .outage(
                1,
                SimDuration::from_secs(300),
                Some(SimDuration::from_secs(500)),
            )
            .build()
            .expect("valid");
        for i in 0..3usize {
            let mut cfg = BrokerConfig::new(7);
            fed.configure(i, &mut cfg);
            assert_eq!(cfg.peer_brokers.len(), 2);
            assert!(!cfg.peer_brokers.contains(&NodeId(i as u32)));
            assert_eq!(cfg.staleness_bound, Some(fed.staleness_bound()));
            assert_eq!(cfg.outage.is_some(), i == 1, "only the victim crashes");
        }
    }

    #[test]
    fn region_affinity_walks_the_roster_in_order() {
        let fed = FederationBuilder::new(roster(4)).build().expect("valid");
        let homes = fed.homes_for(NodeId(99), 2);
        assert_eq!(homes, [NodeId(2), NodeId(3), NodeId(0), NodeId(1)]);
    }

    #[test]
    fn consistent_hash_is_a_stable_permutation() {
        let fed = FederationBuilder::new(roster(4))
            .homing(HomingPolicy::ConsistentHash)
            .build()
            .expect("valid");
        let a = fed.homes_for(NodeId(12), 0);
        let b = fed.homes_for(NodeId(12), 3);
        assert_eq!(a, b, "hash homing ignores the region");
        assert_eq!(a.len(), 4);
        let mut sorted = a.clone();
        sorted.sort_by_key(|n| n.index());
        assert_eq!(sorted, roster(4), "preference list is a permutation");
    }

    #[test]
    fn consistent_hash_spreads_clients() {
        let fed = FederationBuilder::new(roster(4))
            .homing(HomingPolicy::ConsistentHash)
            .build()
            .expect("valid");
        let mut hits = [0usize; 4];
        for c in 100..400 {
            let home = fed.home_for(NodeId(c), 0);
            hits[home.index()] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(h > 0, "broker {i} got no clients out of 300");
        }
    }
}
