//! # overlay — a JXTA-Overlay reimplementation
//!
//! JXTA-Overlay (the platform the paper deployed on PlanetLab) is a brokered
//! P2P overlay built from three modules: **Broker**, **Primitives**, and
//! **Client**. This crate rebuilds all three on top of the `netsim` actor
//! engine:
//!
//! * [`id`], [`advertisement`], [`pipe`], [`group`] — JXTA plumbing:
//!   128-bit ids, discoverable advertisements, unicast pipes, peergroups.
//! * [`message`] — the wire protocol (membership, discovery, statistics,
//!   instant messaging, chunked file transfer, task management).
//! * [`stats`] — the resource-statistics interface of paper §2.2: every
//!   criterion the data-evaluator selection model weighs.
//! * [`filetransfer`] — the petition → ack → stop-and-wait-parts protocol
//!   the paper measures in §4.2; [`sendflow`] — the shared sender-side
//!   state machine (window + record invariants) both broker and client
//!   drive it with.
//! * [`task`] — executable-task lifecycle.
//! * [`client`] — the SimpleClient edge peer; [`gui`] — the GUI client
//!   (SimpleClient plus a simulated interactive user); [`lifecycle`] — the
//!   scripted churn peer that joins, leaves, and rejoins on a pre-sampled
//!   schedule.
//! * [`broker`] — the governor: registry, statistics aggregation, transfer
//!   and task coordination, scripted commands, and the selection hook.
//! * [`federation`] — multi-broker wiring: the validating
//!   [`federation::FederationBuilder`], client→broker homing policies,
//!   and the failover knobs re-homing clients run with.
//! * [`selector`] — the [`selector::PeerSelector`] trait the `peer-selection`
//!   crate implements, plus blind baselines.
//! * [`streaming`] — streaming-on-demand viewers: playback buffers over
//!   piece exchange, with sequential / windowed / rarest-within-window
//!   [`streaming::PiecePolicy`] selection.
//! * [`records`] — shared run log experiments read after a simulation.
//! * [`footprint`] — estimated heap accounting ([`footprint::MemoryFootprint`])
//!   behind the `registry.bytes.*` gauges and `bytes_per_peer` curves.

#![warn(missing_docs)]

pub mod advertisement;
pub mod broker;
pub mod client;
pub mod federation;
pub mod filetransfer;
pub mod footprint;
pub mod group;
pub mod gui;
pub mod id;
pub mod lifecycle;
pub mod message;
pub mod pipe;
pub mod records;
pub mod selector;
pub mod sendflow;
pub mod stats;
pub mod streaming;
pub mod task;

/// Convenient re-exports of the types most callers need.
pub mod prelude {
    pub use crate::broker::{Broker, BrokerCommand, BrokerConfig, TargetSpec};
    pub use crate::client::{ClientCommand, ClientConfig, SimpleClient};
    pub use crate::federation::{
        FailoverPolicy, Federation, FederationBuilder, FederationError, HomingPolicy,
    };
    pub use crate::filetransfer::{split_parts, FileMeta};
    pub use crate::footprint::{FootprintBreakdown, MemoryFootprint};
    pub use crate::gui::{GuiClient, UserBehavior};
    pub use crate::id::{GroupId, PeerId, TaskId, TransferId};
    pub use crate::lifecycle::{
        ChurnProfile, LifecycleConfig, LifecyclePeer, LifecycleScript, LifecycleState, SessionPlan,
    };
    pub use crate::message::OverlayMsg;
    pub use crate::records::{
        JobRecord, RecordSink, RunLog, StreamRecord, TaskRecord, TransferRecord,
    };
    pub use crate::selector::{
        CandidateView, InteractionHistory, PeerSelector, Purpose, RandomSelector,
        RoundRobinSelector, SelectionOutcome, SelectionRequest,
    };
    pub use crate::stats::{Criterion, PeerStats, StatsSnapshot};
    pub use crate::streaming::{PiecePolicy, StreamConfig, StreamingClient};
    pub use crate::task::TaskSpec;
}
