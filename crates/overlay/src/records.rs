//! Experiment observability: a shared log of transfer and task records.
//!
//! Actors are owned by the engine, so experiments observe a run through a
//! [`RecordSink`] — a cheaply clonable handle to a shared [`RunLog`] that the
//! broker writes as protocol milestones happen. After the run, the
//! experiment drains the log and computes the figure series.

use std::sync::{Arc, Mutex};

use netsim::node::NodeId;
use netsim::time::SimTime;

use crate::id::{TaskId, TransferId};

/// Timing milestones of one file transfer to one peer.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRecord {
    /// Transfer session id.
    pub id: TransferId,
    /// Destination host.
    pub to: NodeId,
    /// Destination hostname (interned — hot paths clone a refcount, not a
    /// buffer).
    pub to_name: Arc<str>,
    /// Workload label (the broker command's label / file name).
    pub label: String,
    /// Total file size in bytes.
    pub file_size: u64,
    /// Number of parts.
    pub num_parts: u32,
    /// When the petition was sent.
    pub petition_sent_at: SimTime,
    /// When the peer's application handled the petition (receiver clock).
    pub petition_handled_at: Option<SimTime>,
    /// When the petition ack arrived back at the sender.
    pub petition_acked_at: Option<SimTime>,
    /// Per-part milestones: (sent, confirmed).
    pub parts: Vec<PartRecord>,
    /// When the final confirm arrived (transfer complete).
    pub completed_at: Option<SimTime>,
    /// Whether the transfer was cancelled.
    pub cancelled: bool,
    /// Bytes the receiver actually tallied (reported when the transfer
    /// closes); `None` while in flight or when the receiver kept no state.
    pub receiver_bytes: Option<u64>,
}

/// Milestones of one part.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartRecord {
    /// Part index.
    pub index: u32,
    /// Part size in bytes.
    pub size: u64,
    /// When the sender transmitted it.
    pub sent_at: SimTime,
    /// When its confirm arrived back.
    pub confirmed_at: Option<SimTime>,
}

impl TransferRecord {
    /// Sender-observed petition round-trip: petition sent → ack received.
    pub fn petition_rtt_secs(&self) -> Option<f64> {
        self.petition_acked_at
            .map(|t| t.duration_since(self.petition_sent_at).as_secs_f64())
    }

    /// Receiver-observed petition latency: petition sent → application
    /// handled it. This is the paper's Fig 2 metric.
    pub fn petition_latency_secs(&self) -> Option<f64> {
        self.petition_handled_at
            .map(|t| t.duration_since(self.petition_sent_at).as_secs_f64())
    }

    /// Total transmission time: petition sent → last confirm.
    pub fn total_secs(&self) -> Option<f64> {
        self.completed_at
            .map(|t| t.duration_since(self.petition_sent_at).as_secs_f64())
    }

    /// Data-phase time only: first part sent → last confirm (excludes the
    /// petition handshake).
    pub fn data_phase_secs(&self) -> Option<f64> {
        let first = self.parts.first()?.sent_at;
        self.completed_at
            .map(|t| t.duration_since(first).as_secs_f64())
    }

    /// Time to deliver the final part: last part sent → its confirm
    /// (the paper's Fig 4 "time of receiving the last Mb", scaled by size).
    pub fn last_part_secs(&self) -> Option<f64> {
        let last = self.parts.last()?;
        last.confirmed_at
            .map(|t| t.duration_since(last.sent_at).as_secs_f64())
    }

    /// Mean effective throughput over the data phase, bytes/second.
    pub fn throughput_bytes_per_sec(&self) -> Option<f64> {
        let secs = self.data_phase_secs()?;
        if secs <= 0.0 {
            return None;
        }
        Some(self.file_size as f64 / secs)
    }
}

/// Timing milestones of one task execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    /// Task id.
    pub id: TaskId,
    /// Executing host.
    pub on: NodeId,
    /// Executing hostname (interned — see [`TransferRecord::to_name`]).
    pub on_name: Arc<str>,
    /// Workload label (the command's label).
    pub label: String,
    /// Input bytes shipped before execution (0 = none).
    pub input_bytes: u64,
    /// Compute demand, giga-ops.
    pub work_gops: f64,
    /// Submission (selection) instant.
    pub submitted_at: SimTime,
    /// When the input transfer finished, if any.
    pub input_done_at: Option<SimTime>,
    /// When the peer accepted the offer.
    pub accepted_at: Option<SimTime>,
    /// When the result arrived at the broker.
    pub result_at: Option<SimTime>,
    /// Peer-reported pure execution time, seconds.
    pub exec_secs: Option<f64>,
    /// Whether execution succeeded.
    pub success: bool,
}

impl TaskRecord {
    /// End-to-end makespan in seconds, if finished.
    pub fn total_secs(&self) -> Option<f64> {
        self.result_at
            .map(|t| t.duration_since(self.submitted_at).as_secs_f64())
    }
}

/// A selection decision, for auditing which model picked which peer.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionRecord {
    /// When the decision was made.
    pub at: SimTime,
    /// The selection model's name.
    pub model: String,
    /// The chosen host.
    pub chosen: NodeId,
    /// The chosen hostname (interned — cloned from the registry's
    /// per-peer `Arc<str>`, never reallocated per decision).
    pub chosen_name: Arc<str>,
    /// Number of candidates considered.
    pub candidates: usize,
}

/// A client-submitted job routed through the broker.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job label.
    pub label: String,
    /// Host of the submitting peer.
    pub submitter: NodeId,
    /// Host of the executing peer.
    pub executor: NodeId,
    /// When the broker received the submission.
    pub submitted_at: SimTime,
    /// When the result was forwarded to the submitter.
    pub done_at: Option<SimTime>,
    /// Whether execution succeeded.
    pub success: bool,
}

impl JobRecord {
    /// Submission-to-result seconds, if finished.
    pub fn total_secs(&self) -> Option<f64> {
        self.done_at
            .map(|t| t.duration_since(self.submitted_at).as_secs_f64())
    }
}

/// Playback milestones of one streaming viewer (one stream per node).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRecord {
    /// The viewing host.
    pub node: NodeId,
    /// Its hostname (interned — see [`TransferRecord::to_name`]).
    pub name: Arc<str>,
    /// Pieces the stream is divided into.
    pub total_pieces: u32,
    /// When the viewer began requesting pieces.
    pub began_at: SimTime,
    /// Request start → playback start (the startup buffer filled).
    pub startup_delay_secs: Option<f64>,
    /// Pieces received so far.
    pub pieces_received: u32,
    /// Playback stalls on a missing piece.
    pub rebuffers: u32,
    /// Total virtual time spent stalled, seconds.
    pub rebuffer_secs: f64,
    /// When the final piece finished playing.
    pub completed_at: Option<SimTime>,
}

impl StreamRecord {
    /// Request start → playback of the last piece done, if finished.
    pub fn total_secs(&self) -> Option<f64> {
        self.completed_at
            .map(|t| t.duration_since(self.began_at).as_secs_f64())
    }
}

/// The shared, append-mostly run log.
#[derive(Debug, Default)]
pub struct RunLog {
    /// All transfer records, in creation order.
    pub transfers: Vec<TransferRecord>,
    /// All task records, in creation order.
    pub tasks: Vec<TaskRecord>,
    /// All selection decisions, in order.
    pub selections: Vec<SelectionRecord>,
    /// All client-submitted jobs, in order.
    pub jobs: Vec<JobRecord>,
    /// All streaming-viewer records, in stream-start order.
    pub streams: Vec<StreamRecord>,
}

impl RunLog {
    /// Finds a transfer record by id.
    pub fn transfer(&self, id: TransferId) -> Option<&TransferRecord> {
        self.transfers.iter().find(|t| t.id == id)
    }

    /// Finds a mutable transfer record by id.
    pub fn transfer_mut(&mut self, id: TransferId) -> Option<&mut TransferRecord> {
        self.transfers.iter_mut().find(|t| t.id == id)
    }

    /// Finds a task record by id.
    pub fn task(&self, id: TaskId) -> Option<&TaskRecord> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// Finds a mutable task record by id.
    pub fn task_mut(&mut self, id: TaskId) -> Option<&mut TaskRecord> {
        self.tasks.iter_mut().find(|t| t.id == id)
    }

    /// Finds a mutable stream record by viewing host (streams are
    /// per-node singletons).
    pub fn stream_mut(&mut self, node: NodeId) -> Option<&mut StreamRecord> {
        self.streams.iter_mut().find(|s| s.node == node)
    }

    /// All completed transfers to a given host.
    pub fn completed_transfers_to(&self, node: NodeId) -> impl Iterator<Item = &TransferRecord> {
        self.transfers
            .iter()
            .filter(move |t| t.to == node && t.completed_at.is_some())
    }

    /// Appends every record of `other`, preserving each section's order.
    /// A sharded run keeps one log per shard and absorbs them in shard
    /// order afterwards, so the merged log is worker-count invariant.
    pub fn absorb(&mut self, other: RunLog) {
        self.transfers.extend(other.transfers);
        self.tasks.extend(other.tasks);
        self.selections.extend(other.selections);
        self.jobs.extend(other.jobs);
        self.streams.extend(other.streams);
    }
}

/// Cheaply clonable handle to a [`RunLog`].
#[derive(Debug, Clone, Default)]
pub struct RecordSink(Arc<Mutex<RunLog>>);

impl RecordSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        RecordSink::default()
    }

    /// Runs `f` with mutable access to the log.
    pub fn with<R>(&self, f: impl FnOnce(&mut RunLog) -> R) -> R {
        f(&mut self.0.lock().expect("record sink poisoned"))
    }

    /// Takes the entire log, leaving it empty (post-run drain).
    pub fn drain(&self) -> RunLog {
        std::mem::take(&mut *self.0.lock().expect("record sink poisoned"))
    }

    /// Snapshot counts: (transfers, tasks, selections).
    pub fn counts(&self) -> (usize, usize, usize) {
        let log = self.0.lock().expect("record sink poisoned");
        (log.transfers.len(), log.tasks.len(), log.selections.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::IdGenerator;
    use netsim::time::SimDuration;

    fn t(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    fn sample_transfer() -> TransferRecord {
        let mut g = IdGenerator::new(1);
        TransferRecord {
            id: TransferId::generate(&mut g),
            to: NodeId(2),
            to_name: "sc2".into(),
            label: "test".into(),
            file_size: 100,
            num_parts: 2,
            petition_sent_at: t(0.0),
            petition_handled_at: Some(t(1.5)),
            petition_acked_at: Some(t(1.6)),
            parts: vec![
                PartRecord {
                    index: 0,
                    size: 50,
                    sent_at: t(1.6),
                    confirmed_at: Some(t(3.0)),
                },
                PartRecord {
                    index: 1,
                    size: 50,
                    sent_at: t(3.0),
                    confirmed_at: Some(t(4.6)),
                },
            ],
            completed_at: Some(t(4.6)),
            cancelled: false,
            receiver_bytes: Some(100),
        }
    }

    #[test]
    fn transfer_record_derived_metrics() {
        let r = sample_transfer();
        assert_eq!(r.petition_latency_secs(), Some(1.5));
        assert!((r.petition_rtt_secs().unwrap() - 1.6).abs() < 1e-9);
        assert!((r.total_secs().unwrap() - 4.6).abs() < 1e-9);
        assert!((r.data_phase_secs().unwrap() - 3.0).abs() < 1e-9);
        assert!((r.last_part_secs().unwrap() - 1.6).abs() < 1e-9);
        assert!((r.throughput_bytes_per_sec().unwrap() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn incomplete_transfer_yields_none() {
        let mut r = sample_transfer();
        r.completed_at = None;
        r.petition_acked_at = None;
        r.petition_handled_at = None;
        assert_eq!(r.total_secs(), None);
        assert_eq!(r.petition_rtt_secs(), None);
        assert_eq!(r.petition_latency_secs(), None);
        assert_eq!(r.throughput_bytes_per_sec(), None);
    }

    #[test]
    fn sink_is_shared_between_clones() {
        let sink = RecordSink::new();
        let clone = sink.clone();
        clone.with(|log| log.transfers.push(sample_transfer()));
        assert_eq!(sink.counts().0, 1);
        let drained = sink.drain();
        assert_eq!(drained.transfers.len(), 1);
        assert_eq!(sink.counts().0, 0);
    }

    #[test]
    fn runlog_lookup_by_id() {
        let mut log = RunLog::default();
        let r = sample_transfer();
        let id = r.id;
        log.transfers.push(r);
        assert!(log.transfer(id).is_some());
        log.transfer_mut(id).unwrap().cancelled = true;
        assert!(log.transfer(id).unwrap().cancelled);
        let mut g = IdGenerator::new(9);
        assert!(log.transfer(TransferId::generate(&mut g)).is_none());
    }

    #[test]
    fn completed_transfers_to_filters() {
        let mut log = RunLog::default();
        let mut a = sample_transfer();
        a.to = NodeId(1);
        let mut b = sample_transfer();
        b.to = NodeId(2);
        let mut c = sample_transfer();
        c.to = NodeId(1);
        c.completed_at = None;
        log.transfers.extend([a, b, c]);
        assert_eq!(log.completed_transfers_to(NodeId(1)).count(), 1);
        assert_eq!(log.completed_transfers_to(NodeId(2)).count(), 1);
    }
}
