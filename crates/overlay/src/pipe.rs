//! Unicast pipe bookkeeping.
//!
//! JXTA applications communicate over *pipes*: named, advertised,
//! unidirectional channels resolved to a peer endpoint. Our transport is
//! connectionless (the engine routes by host), so pipes here are the
//! resolution layer: a registry mapping pipe ids to owning peers and hosts,
//! with open/resolve/close semantics and per-pipe traffic accounting.

use std::collections::HashMap;

use netsim::node::NodeId;
use netsim::time::SimTime;

use crate::advertisement::PipeAdvertisement;
use crate::id::{IdGenerator, PeerId, PipeId};

/// One registered pipe endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct PipeEndpoint {
    /// The pipe's advertisement.
    pub adv: PipeAdvertisement,
    /// Host the owner runs on.
    pub node: NodeId,
    /// Messages routed through this pipe.
    pub messages: u64,
    /// Bytes routed through this pipe.
    pub bytes: u64,
}

/// Registry of open pipes (kept by the broker).
#[derive(Debug, Default)]
pub struct PipeRegistry {
    pipes: HashMap<PipeId, PipeEndpoint>,
}

impl PipeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        PipeRegistry::default()
    }

    /// Opens (registers) a pipe for `owner` on `node`; returns its id.
    pub fn open(
        &mut self,
        ids: &mut IdGenerator,
        owner: PeerId,
        node: NodeId,
        name: impl Into<String>,
        now: SimTime,
        lifetime: netsim::time::SimDuration,
    ) -> PipeId {
        let pipe = PipeId::generate(ids);
        self.pipes.insert(
            pipe,
            PipeEndpoint {
                adv: PipeAdvertisement {
                    pipe,
                    owner,
                    name: name.into(),
                    published: now,
                    lifetime,
                },
                node,
                messages: 0,
                bytes: 0,
            },
        );
        pipe
    }

    /// Resolves a pipe to its destination host, if open and unexpired.
    pub fn resolve(&self, pipe: PipeId, now: SimTime) -> Option<NodeId> {
        self.pipes
            .get(&pipe)
            .filter(|p| !p.adv.is_expired(now))
            .map(|p| p.node)
    }

    /// Accounts one message of `bytes` routed through `pipe`.
    pub fn account(&mut self, pipe: PipeId, bytes: u64) {
        if let Some(p) = self.pipes.get_mut(&pipe) {
            p.messages += 1;
            p.bytes += bytes;
        }
    }

    /// Closes a pipe; returns its final accounting if it existed.
    pub fn close(&mut self, pipe: PipeId) -> Option<PipeEndpoint> {
        self.pipes.remove(&pipe)
    }

    /// Drops expired pipes, returning how many were purged.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let before = self.pipes.len();
        self.pipes.retain(|_, p| !p.adv.is_expired(now));
        before - self.pipes.len()
    }

    /// Number of open pipes.
    pub fn len(&self) -> usize {
        self.pipes.len()
    }

    /// True when no pipes are open.
    pub fn is_empty(&self) -> bool {
        self.pipes.is_empty()
    }

    /// All pipes owned by `peer`.
    pub fn owned_by(&self, peer: PeerId) -> impl Iterator<Item = &PipeEndpoint> {
        self.pipes.values().filter(move |p| p.adv.owner == peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn setup() -> (PipeRegistry, IdGenerator, PeerId) {
        let mut ids = IdGenerator::new(1);
        let owner = PeerId::generate(&mut ids);
        (PipeRegistry::new(), ids, owner)
    }

    #[test]
    fn open_resolve_close() {
        let (mut reg, mut ids, owner) = setup();
        let pipe = reg.open(
            &mut ids,
            owner,
            NodeId(3),
            "ctl",
            t(0),
            SimDuration::from_secs(100),
        );
        assert_eq!(reg.resolve(pipe, t(10)), Some(NodeId(3)));
        assert_eq!(reg.len(), 1);
        let closed = reg.close(pipe).unwrap();
        assert_eq!(closed.node, NodeId(3));
        assert_eq!(reg.resolve(pipe, t(10)), None);
        assert!(reg.is_empty());
    }

    #[test]
    fn expired_pipes_do_not_resolve() {
        let (mut reg, mut ids, owner) = setup();
        let pipe = reg.open(
            &mut ids,
            owner,
            NodeId(1),
            "x",
            t(0),
            SimDuration::from_secs(10),
        );
        assert_eq!(reg.resolve(pipe, t(5)), Some(NodeId(1)));
        assert_eq!(reg.resolve(pipe, t(11)), None);
        assert_eq!(reg.purge_expired(t(11)), 1);
        assert!(reg.is_empty());
    }

    #[test]
    fn accounting_accumulates() {
        let (mut reg, mut ids, owner) = setup();
        let pipe = reg.open(
            &mut ids,
            owner,
            NodeId(2),
            "data",
            t(0),
            SimDuration::from_secs(100),
        );
        reg.account(pipe, 500);
        reg.account(pipe, 1500);
        let ep = reg.close(pipe).unwrap();
        assert_eq!(ep.messages, 2);
        assert_eq!(ep.bytes, 2000);
    }

    #[test]
    fn owned_by_filters() {
        let (mut reg, mut ids, owner) = setup();
        let other = PeerId::generate(&mut ids);
        reg.open(
            &mut ids,
            owner,
            NodeId(1),
            "a",
            t(0),
            SimDuration::from_secs(100),
        );
        reg.open(
            &mut ids,
            owner,
            NodeId(1),
            "b",
            t(0),
            SimDuration::from_secs(100),
        );
        reg.open(
            &mut ids,
            other,
            NodeId(2),
            "c",
            t(0),
            SimDuration::from_secs(100),
        );
        assert_eq!(reg.owned_by(owner).count(), 2);
        assert_eq!(reg.owned_by(other).count(), 1);
    }
}
