//! The resource-statistics interface of JXTA-Overlay (paper §2.2/§3).
//!
//! Brokers keep "historical and statistical data" per peer; the data
//! evaluator selection model turns these into a weighted cost. This module
//! implements every criterion the paper enumerates:
//!
//! * message criteria — % successfully sent messages (session / total /
//!   last k hours), inbox & outbox queue length (now / average);
//! * task criteria — % successfully executed and % accepted (session / total);
//! * file criteria — % sent files and % cancelled transfers (session /
//!   total), number of pending transfers.

use std::fmt;

use netsim::time::{SimDuration, SimTime};

/// Success/attempt ratio counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RatioCounter {
    /// Attempts recorded.
    pub attempts: u64,
    /// Successful attempts recorded.
    pub successes: u64,
}

impl RatioCounter {
    /// Records one attempt and its outcome.
    pub fn record(&mut self, success: bool) {
        self.attempts += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Success percentage in `[0, 100]`, or `None` with no history.
    pub fn percent(&self) -> Option<f64> {
        if self.attempts == 0 {
            None
        } else {
            Some(100.0 * self.successes as f64 / self.attempts as f64)
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &RatioCounter) {
        self.attempts += other.attempts;
        self.successes += other.successes;
    }
}

/// Time-weighted queue-length gauge: tracks the current length and the
/// exact time-weighted average since creation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueGauge {
    current: u32,
    integral: f64, // length × seconds
    started: SimTime,
    last_update: SimTime,
}

impl QueueGauge {
    /// Creates a gauge starting at time `now` with length zero.
    pub fn new(now: SimTime) -> Self {
        QueueGauge {
            current: 0,
            integral: 0.0,
            started: now,
            last_update: now,
        }
    }

    fn accumulate(&mut self, now: SimTime) {
        let dt = now.duration_since(self.last_update).as_secs_f64();
        self.integral += self.current as f64 * dt;
        self.last_update = now;
    }

    /// Sets the queue length at time `now`.
    pub fn set(&mut self, now: SimTime, len: u32) {
        self.accumulate(now);
        self.current = len;
    }

    /// Increments the length at time `now`.
    pub fn incr(&mut self, now: SimTime) {
        self.accumulate(now);
        self.current += 1;
    }

    /// Decrements the length at time `now` (saturating).
    pub fn decr(&mut self, now: SimTime) {
        self.accumulate(now);
        self.current = self.current.saturating_sub(1);
    }

    /// Current length.
    pub fn current(&self) -> u32 {
        self.current
    }

    /// Time-weighted average length over the gauge's lifetime up to `now`.
    pub fn average(&self, now: SimTime) -> f64 {
        let total = now.duration_since(self.started).as_secs_f64();
        if total <= 0.0 {
            return self.current as f64;
        }
        let pending = now.duration_since(self.last_update).as_secs_f64();
        (self.integral + self.current as f64 * pending) / total
    }
}

/// Ratio counter bucketed by hour for "last k hours" criteria.
///
/// A fixed ring of hourly buckets; querying sums the buckets that fall
/// inside the window. Granularity of one hour matches the paper's phrasing
/// ("during the last k-hours").
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedRatio {
    buckets: Vec<RatioCounter>,
    /// Absolute hour index of the bucket at `head`.
    head_hour: u64,
    head: usize,
}

impl WindowedRatio {
    /// Creates a window able to answer queries up to `capacity_hours` back.
    pub fn new(capacity_hours: usize) -> Self {
        WindowedRatio {
            buckets: vec![RatioCounter::default(); capacity_hours.max(1)],
            head_hour: 0,
            head: 0,
        }
    }

    /// Estimated heap bytes held by the bucket ring (the window's only
    /// heap allocation), for [`MemoryFootprint`](crate::footprint)
    /// accounting.
    pub fn heap_bytes(&self) -> u64 {
        (self.buckets.len() * std::mem::size_of::<RatioCounter>()) as u64
    }

    fn hour_of(t: SimTime) -> u64 {
        t.as_nanos() / SimDuration::from_secs(3600).as_nanos()
    }

    fn advance_to(&mut self, hour: u64) {
        while self.head_hour < hour {
            self.head_hour += 1;
            self.head = (self.head + 1) % self.buckets.len();
            self.buckets[self.head] = RatioCounter::default();
        }
    }

    /// Records an attempt at time `now`.
    pub fn record(&mut self, now: SimTime, success: bool) {
        self.advance_to(Self::hour_of(now));
        self.buckets[self.head].record(success);
    }

    /// Success percentage over the last `k` hours ending at `now`.
    pub fn percent_last_hours(&self, now: SimTime, k: usize) -> Option<f64> {
        let now_hour = Self::hour_of(now);
        let mut total = RatioCounter::default();
        for back in 0..k.min(self.buckets.len()) {
            let Some(hour) = now_hour.checked_sub(back as u64) else {
                break;
            };
            if hour > self.head_hour {
                continue; // future bucket (none recorded yet)
            }
            let behind = (self.head_hour - hour) as usize;
            if behind >= self.buckets.len() {
                break;
            }
            let idx = (self.head + self.buckets.len() - behind) % self.buckets.len();
            total.merge(&self.buckets[idx]);
        }
        total.percent()
    }
}

/// The per-scope (session or all-time) counter block of §2.2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScopeCounters {
    /// Messages sent, and how many succeeded.
    pub messages: RatioCounter,
    /// Tasks offered, and how many the peer accepted.
    pub tasks_accepted: RatioCounter,
    /// Tasks started, and how many executed successfully.
    pub tasks_executed: RatioCounter,
    /// File sends attempted, and how many completed.
    pub files_sent: RatioCounter,
    /// File transfers started, and how many were cancelled
    /// (successes here count *cancellations*, so lower is better).
    pub transfers_cancelled: RatioCounter,
}

/// Live statistics record the broker keeps for one peer.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerStats {
    /// Counters for the current session.
    pub session: ScopeCounters,
    /// Counters over all sessions.
    pub total: ScopeCounters,
    /// Hour-bucketed message-success window.
    pub message_window: WindowedRatio,
    /// Outbox queue gauge.
    pub outbox: QueueGauge,
    /// Inbox queue gauge.
    pub inbox: QueueGauge,
    /// File transfers currently in flight to/from this peer.
    pub pending_transfers: u32,
    /// Advertised CPU rate (gops), from the peer advertisement.
    pub cpu_gops: f64,
}

impl PeerStats {
    /// Fresh stats for a peer first seen at `now`.
    pub fn new(now: SimTime, cpu_gops: f64) -> Self {
        PeerStats {
            session: ScopeCounters::default(),
            total: ScopeCounters::default(),
            message_window: WindowedRatio::new(48),
            outbox: QueueGauge::new(now),
            inbox: QueueGauge::new(now),
            pending_transfers: 0,
            cpu_gops,
        }
    }

    /// Starts a new session: session counters reset, totals persist
    /// (the paper distinguishes "current session" from "all sessions").
    pub fn begin_session(&mut self) {
        self.session = ScopeCounters::default();
    }

    /// Records a message send outcome at `now`.
    pub fn record_message(&mut self, now: SimTime, success: bool) {
        self.session.messages.record(success);
        self.total.messages.record(success);
        self.message_window.record(now, success);
    }

    /// Records a task-offer outcome.
    pub fn record_task_offer(&mut self, accepted: bool) {
        self.session.tasks_accepted.record(accepted);
        self.total.tasks_accepted.record(accepted);
    }

    /// Records a task-execution outcome.
    pub fn record_task_execution(&mut self, success: bool) {
        self.session.tasks_executed.record(success);
        self.total.tasks_executed.record(success);
    }

    /// Records a file-send outcome.
    pub fn record_file_send(&mut self, completed: bool) {
        self.session.files_sent.record(completed);
        self.total.files_sent.record(completed);
        self.session.transfers_cancelled.record(!completed);
        self.total.transfers_cancelled.record(!completed);
    }

    /// Takes a point-in-time snapshot with every §2.2 criterion evaluated.
    pub fn snapshot(&self, now: SimTime, k_hours: usize) -> StatsSnapshot {
        StatsSnapshot {
            msg_success_session: self.session.messages.percent(),
            msg_success_total: self.total.messages.percent(),
            msg_success_last_k: self.message_window.percent_last_hours(now, k_hours),
            outbox_now: self.outbox.current() as f64,
            outbox_avg: self.outbox.average(now),
            inbox_now: self.inbox.current() as f64,
            inbox_avg: self.inbox.average(now),
            task_exec_session: self.session.tasks_executed.percent(),
            task_exec_total: self.total.tasks_executed.percent(),
            task_accept_session: self.session.tasks_accepted.percent(),
            task_accept_total: self.total.tasks_accepted.percent(),
            files_sent_session: self.session.files_sent.percent(),
            files_sent_total: self.total.files_sent.percent(),
            cancel_session: self.session.transfers_cancelled.percent(),
            cancel_total: self.total.transfers_cancelled.percent(),
            pending_transfers: self.pending_transfers as f64,
            cpu_gops: self.cpu_gops,
        }
    }
}

/// One §2.2 selection criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Criterion {
    /// % successfully sent messages, current session.
    MsgSuccessSession,
    /// % successfully sent messages, all sessions.
    MsgSuccessTotal,
    /// % successfully sent messages, last k hours.
    MsgSuccessLastK,
    /// Messages in the outbox queue now.
    OutboxNow,
    /// Average messages in the outbox queue.
    OutboxAvg,
    /// Messages in the inbox queue now.
    InboxNow,
    /// Average messages in the inbox queue.
    InboxAvg,
    /// % successfully executed tasks, current session.
    TaskExecSession,
    /// % successfully executed tasks, all sessions.
    TaskExecTotal,
    /// % tasks accepted, current session.
    TaskAcceptSession,
    /// % tasks accepted, all sessions.
    TaskAcceptTotal,
    /// % sent files, current session.
    FilesSentSession,
    /// % sent files, all sessions.
    FilesSentTotal,
    /// % cancelled transfers, current session.
    CancelSession,
    /// % cancelled transfers, all sessions.
    CancelTotal,
    /// Number of pending transfers.
    PendingTransfers,
}

impl Criterion {
    /// Every criterion, in the paper's order.
    pub const ALL: [Criterion; 16] = [
        Criterion::MsgSuccessSession,
        Criterion::MsgSuccessTotal,
        Criterion::MsgSuccessLastK,
        Criterion::OutboxNow,
        Criterion::OutboxAvg,
        Criterion::InboxNow,
        Criterion::InboxAvg,
        Criterion::TaskExecSession,
        Criterion::TaskExecTotal,
        Criterion::TaskAcceptSession,
        Criterion::TaskAcceptTotal,
        Criterion::FilesSentSession,
        Criterion::FilesSentTotal,
        Criterion::CancelSession,
        Criterion::CancelTotal,
        Criterion::PendingTransfers,
    ];

    /// Whether larger values of this criterion indicate a *better* peer.
    pub fn higher_is_better(self) -> bool {
        !matches!(
            self,
            Criterion::OutboxNow
                | Criterion::OutboxAvg
                | Criterion::InboxNow
                | Criterion::InboxAvg
                | Criterion::CancelSession
                | Criterion::CancelTotal
                | Criterion::PendingTransfers
        )
    }
}

impl fmt::Display for Criterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Criterion::MsgSuccessSession => "msg-success(session)",
            Criterion::MsgSuccessTotal => "msg-success(total)",
            Criterion::MsgSuccessLastK => "msg-success(last-k-hours)",
            Criterion::OutboxNow => "outbox(now)",
            Criterion::OutboxAvg => "outbox(avg)",
            Criterion::InboxNow => "inbox(now)",
            Criterion::InboxAvg => "inbox(avg)",
            Criterion::TaskExecSession => "task-exec(session)",
            Criterion::TaskExecTotal => "task-exec(total)",
            Criterion::TaskAcceptSession => "task-accept(session)",
            Criterion::TaskAcceptTotal => "task-accept(total)",
            Criterion::FilesSentSession => "files-sent(session)",
            Criterion::FilesSentTotal => "files-sent(total)",
            Criterion::CancelSession => "cancelled(session)",
            Criterion::CancelTotal => "cancelled(total)",
            Criterion::PendingTransfers => "pending-transfers",
        };
        f.write_str(s)
    }
}

/// A point-in-time evaluation of every criterion for one peer.
///
/// `None` means "no history for this criterion yet" — selection models treat
/// missing data neutrally rather than as zero.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// % successfully sent messages, current session.
    pub msg_success_session: Option<f64>,
    /// % successfully sent messages, all sessions.
    pub msg_success_total: Option<f64>,
    /// % successfully sent messages over the last k hours.
    pub msg_success_last_k: Option<f64>,
    /// Outbox length now.
    pub outbox_now: f64,
    /// Time-weighted average outbox length.
    pub outbox_avg: f64,
    /// Inbox length now.
    pub inbox_now: f64,
    /// Time-weighted average inbox length.
    pub inbox_avg: f64,
    /// % successfully executed tasks, current session.
    pub task_exec_session: Option<f64>,
    /// % successfully executed tasks, all sessions.
    pub task_exec_total: Option<f64>,
    /// % tasks accepted, current session.
    pub task_accept_session: Option<f64>,
    /// % tasks accepted, all sessions.
    pub task_accept_total: Option<f64>,
    /// % files sent, current session.
    pub files_sent_session: Option<f64>,
    /// % files sent, all sessions.
    pub files_sent_total: Option<f64>,
    /// % cancelled transfers, current session.
    pub cancel_session: Option<f64>,
    /// % cancelled transfers, all sessions.
    pub cancel_total: Option<f64>,
    /// File transfers currently pending.
    pub pending_transfers: f64,
    /// Advertised CPU rate, gops.
    pub cpu_gops: f64,
}

impl StatsSnapshot {
    /// The value of one criterion (`None` = no history).
    pub fn value(&self, c: Criterion) -> Option<f64> {
        match c {
            Criterion::MsgSuccessSession => self.msg_success_session,
            Criterion::MsgSuccessTotal => self.msg_success_total,
            Criterion::MsgSuccessLastK => self.msg_success_last_k,
            Criterion::OutboxNow => Some(self.outbox_now),
            Criterion::OutboxAvg => Some(self.outbox_avg),
            Criterion::InboxNow => Some(self.inbox_now),
            Criterion::InboxAvg => Some(self.inbox_avg),
            Criterion::TaskExecSession => self.task_exec_session,
            Criterion::TaskExecTotal => self.task_exec_total,
            Criterion::TaskAcceptSession => self.task_accept_session,
            Criterion::TaskAcceptTotal => self.task_accept_total,
            Criterion::FilesSentSession => self.files_sent_session,
            Criterion::FilesSentTotal => self.files_sent_total,
            Criterion::CancelSession => self.cancel_session,
            Criterion::CancelTotal => self.cancel_total,
            Criterion::PendingTransfers => Some(self.pending_transfers),
        }
    }

    /// A neutral snapshot for a peer with no history at all.
    pub fn empty(cpu_gops: f64) -> Self {
        StatsSnapshot {
            msg_success_session: None,
            msg_success_total: None,
            msg_success_last_k: None,
            outbox_now: 0.0,
            outbox_avg: 0.0,
            inbox_now: 0.0,
            inbox_avg: 0.0,
            task_exec_session: None,
            task_exec_total: None,
            task_accept_session: None,
            task_accept_total: None,
            files_sent_session: None,
            files_sent_total: None,
            cancel_session: None,
            cancel_total: None,
            pending_transfers: 0.0,
            cpu_gops,
        }
    }

    /// Approximate wire size of a snapshot when shipped in a stats report.
    pub fn wire_size(&self) -> u64 {
        17 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn ratio_counter_percent() {
        let mut r = RatioCounter::default();
        assert_eq!(r.percent(), None);
        r.record(true);
        r.record(true);
        r.record(false);
        r.record(true);
        assert_eq!(r.percent(), Some(75.0));
    }

    #[test]
    fn queue_gauge_time_weighted_average() {
        let mut g = QueueGauge::new(t(0));
        g.set(t(0), 2); // length 2 for 10 s
        g.set(t(10), 4); // length 4 for 10 s
                         // Average over [0, 20] = (2·10 + 4·10)/20 = 3.
        assert!((g.average(t(20)) - 3.0).abs() < 1e-12);
        assert_eq!(g.current(), 4);
    }

    #[test]
    fn queue_gauge_incr_decr() {
        let mut g = QueueGauge::new(t(0));
        g.incr(t(1));
        g.incr(t(2));
        g.decr(t(3));
        assert_eq!(g.current(), 1);
        g.decr(t(4));
        g.decr(t(5)); // saturates at 0
        assert_eq!(g.current(), 0);
    }

    #[test]
    fn queue_gauge_average_at_birth() {
        let g = QueueGauge::new(t(5));
        assert_eq!(g.average(t(5)), 0.0);
    }

    #[test]
    fn windowed_ratio_respects_window() {
        let mut w = WindowedRatio::new(48);
        // Hour 0: all failures; hour 2: all successes.
        w.record(t(100), false);
        w.record(t(200), false);
        w.record(t(2 * 3600 + 10), true);
        w.record(t(2 * 3600 + 20), true);
        // Last 1 hour at t=2h+30: only successes.
        assert_eq!(w.percent_last_hours(t(2 * 3600 + 30), 1), Some(100.0));
        // Last 3 hours: 2 of 4.
        assert_eq!(w.percent_last_hours(t(2 * 3600 + 30), 3), Some(50.0));
        // Window beyond all data: same 50 %.
        assert_eq!(w.percent_last_hours(t(2 * 3600 + 30), 48), Some(50.0));
    }

    #[test]
    fn windowed_ratio_evicts_old_hours() {
        let mut w = WindowedRatio::new(4);
        w.record(t(0), false);
        // 10 hours later the failure has been evicted from the 4-bucket ring.
        w.record(t(10 * 3600), true);
        assert_eq!(w.percent_last_hours(t(10 * 3600), 4), Some(100.0));
    }

    #[test]
    fn windowed_ratio_empty_is_none() {
        let w = WindowedRatio::new(8);
        assert_eq!(w.percent_last_hours(t(1000), 4), None);
    }

    #[test]
    fn peer_stats_sessions_vs_totals() {
        let mut s = PeerStats::new(t(0), 1.5);
        s.record_message(t(1), true);
        s.record_message(t(2), false);
        s.begin_session();
        s.record_message(t(3), true);
        let snap = s.snapshot(t(4), 24);
        assert_eq!(snap.msg_success_session, Some(100.0));
        let total = snap.msg_success_total.unwrap();
        assert!((total - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn peer_stats_task_and_file_counters() {
        let mut s = PeerStats::new(t(0), 1.0);
        s.record_task_offer(true);
        s.record_task_offer(false);
        s.record_task_execution(true);
        s.record_file_send(true);
        s.record_file_send(false);
        let snap = s.snapshot(t(10), 24);
        assert_eq!(snap.task_accept_total, Some(50.0));
        assert_eq!(snap.task_exec_total, Some(100.0));
        assert_eq!(snap.files_sent_total, Some(50.0));
        assert_eq!(snap.cancel_total, Some(50.0));
    }

    #[test]
    fn snapshot_value_accessor_covers_all_criteria() {
        let mut s = PeerStats::new(t(0), 2.0);
        s.record_message(t(1), true);
        s.record_task_offer(true);
        s.record_task_execution(true);
        s.record_file_send(true);
        s.outbox.set(t(1), 3);
        s.inbox.set(t(1), 1);
        s.pending_transfers = 2;
        let snap = s.snapshot(t(2), 24);
        for c in Criterion::ALL {
            // Every criterion is either a value or explicitly None.
            let _ = snap.value(c);
        }
        assert_eq!(snap.value(Criterion::OutboxNow), Some(3.0));
        assert_eq!(snap.value(Criterion::PendingTransfers), Some(2.0));
    }

    #[test]
    fn criterion_polarity() {
        assert!(Criterion::MsgSuccessTotal.higher_is_better());
        assert!(Criterion::TaskExecSession.higher_is_better());
        assert!(!Criterion::OutboxNow.higher_is_better());
        assert!(!Criterion::CancelTotal.higher_is_better());
        assert!(!Criterion::PendingTransfers.higher_is_better());
    }

    #[test]
    fn empty_snapshot_is_neutral() {
        let snap = StatsSnapshot::empty(1.0);
        assert_eq!(snap.value(Criterion::MsgSuccessTotal), None);
        assert_eq!(snap.value(Criterion::OutboxNow), Some(0.0));
        assert!(snap.wire_size() > 0);
    }

    #[test]
    fn criterion_display_unique() {
        let mut names: Vec<String> = Criterion::ALL.iter().map(|c| c.to_string()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
