//! JXTA-style identifiers.
//!
//! JXTA identifies peers, pipes, groups and content with 128-bit UUID-like
//! IDs. We reproduce that scheme with a namespace byte folded into a 128-bit
//! value, generated deterministically from a seeded generator so simulation
//! runs are reproducible.

use std::fmt;

use netsim::rng::SimRng;

/// Namespace of an identifier (JXTA calls these ID *types*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IdKind {
    /// A peer.
    Peer,
    /// A unicast pipe.
    Pipe,
    /// A peer group.
    Group,
    /// A file-transfer session.
    Transfer,
    /// An executable task.
    Task,
    /// A shared content item.
    Content,
}

impl IdKind {
    fn tag(self) -> u8 {
        match self {
            IdKind::Peer => 0x01,
            IdKind::Pipe => 0x02,
            IdKind::Group => 0x03,
            IdKind::Transfer => 0x04,
            IdKind::Task => 0x05,
            IdKind::Content => 0x06,
        }
    }

    fn prefix(self) -> &'static str {
        match self {
            IdKind::Peer => "peer",
            IdKind::Pipe => "pipe",
            IdKind::Group => "grp",
            IdKind::Transfer => "xfer",
            IdKind::Task => "task",
            IdKind::Content => "cont",
        }
    }
}

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $kind:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u128);

        impl $name {
            /// Generates a fresh id from the generator.
            pub fn generate(gen: &mut IdGenerator) -> Self {
                $name(gen.next_raw($kind))
            }

            /// The raw 128-bit value.
            pub fn raw(self) -> u128 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "urn:jxta:{}-{:016x}", $kind.prefix(), (self.0 >> 8) as u64)
            }
        }
    };
}

define_id!(
    /// Identifies a peer.
    PeerId,
    IdKind::Peer
);
define_id!(
    /// Identifies a unicast pipe.
    PipeId,
    IdKind::Pipe
);
define_id!(
    /// Identifies a peer group.
    GroupId,
    IdKind::Group
);
define_id!(
    /// Identifies one file-transfer session.
    TransferId,
    IdKind::Transfer
);
define_id!(
    /// Identifies an executable task.
    TaskId,
    IdKind::Task
);
define_id!(
    /// Identifies a shared content item.
    ContentId,
    IdKind::Content
);

/// Deterministic id factory: a seeded RNG plus a collision-free counter.
///
/// The counter guarantees uniqueness within a run even if the RNG were to
/// collide; the RNG spreads ids so hash maps behave.
#[derive(Debug, Clone)]
pub struct IdGenerator {
    rng: SimRng,
    counter: u64,
}

impl IdGenerator {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        IdGenerator {
            rng: SimRng::new(seed ^ 0x1D6E_5A17_0DD5_EED5),
            counter: 0,
        }
    }

    fn next_raw(&mut self, kind: IdKind) -> u128 {
        self.counter += 1;
        let hi = self.rng.next_u64_raw() as u128;
        let lo = self.counter as u128;
        (hi << 64) | (lo << 8) | kind.tag() as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let mut g = IdGenerator::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(PeerId::generate(&mut g)));
        }
    }

    #[test]
    fn ids_are_deterministic_per_seed() {
        let mut g1 = IdGenerator::new(7);
        let mut g2 = IdGenerator::new(7);
        for _ in 0..100 {
            assert_eq!(TransferId::generate(&mut g1), TransferId::generate(&mut g2));
        }
        let mut g3 = IdGenerator::new(8);
        assert_ne!(PeerId::generate(&mut g1), PeerId::generate(&mut g3));
    }

    #[test]
    fn kinds_are_distinguishable() {
        let mut g = IdGenerator::new(2);
        let p = PeerId::generate(&mut g);
        let t = TaskId::generate(&mut g);
        // Tag byte differs even if upper bits were equal.
        assert_ne!(p.raw() & 0xFF, t.raw() & 0xFF);
    }

    #[test]
    fn display_is_urn_like() {
        let mut g = IdGenerator::new(3);
        let p = PeerId::generate(&mut g);
        let s = p.to_string();
        assert!(s.starts_with("urn:jxta:peer-"), "{s}");
        let x = TransferId::generate(&mut g);
        assert!(x.to_string().starts_with("urn:jxta:xfer-"));
    }
}
