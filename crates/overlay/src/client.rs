//! The SimpleClient edge peer (no GUI), as used in the paper's experiments.
//!
//! A client joins the overlay through its broker, answers file-transfer
//! petitions, confirms each received part ("correct reception … and its
//! availability to receive another part"), executes offered tasks on its
//! host's CPU model, and periodically reports its local statistics.
//!
//! Beyond the broker-driven flows, clients also participate actively:
//! they **publish content** (file sharing), **serve instructed transfers**
//! peer-to-peer when the broker redirects a file request to them, and
//! **submit jobs** of their own which the broker places via its selection
//! model.

use std::collections::HashMap;

use netsim::engine::{Actor, Context, TimerId};
use netsim::node::NodeId;
use netsim::time::SimDuration;
use netsim::trace::{SpanKind, TraceEventKind};

use crate::advertisement::{ContentAdvertisement, PeerAdvertisement, DEFAULT_LIFETIME};
use crate::filetransfer::{InboundTransfer, OutboundTransfer, PartReceipt};
use crate::id::{ContentId, IdGenerator, PeerId, TaskId, TransferId};
use crate::message::OverlayMsg;
use crate::records::RecordSink;
use crate::sendflow::SenderFlow;
use crate::stats::PeerStats;

/// Timer tag for the periodic stats report.
const STATS_TIMER_TAG: u64 = 0;
/// Client-command timer tags occupy `[CMD_TAG_BASE, TASK_TAG_BASE)`.
const CMD_TAG_BASE: u64 = 500;
/// Task-completion timer tags start here.
const TASK_TAG_BASE: u64 = 1000;

/// A scripted client action.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientCommand {
    /// Ask the broker for a file by name (the broker picks an owner peer).
    RequestFile {
        /// Published name of the wanted file.
        name: String,
    },
    /// Submit a job; the broker selects the executor.
    SubmitJob {
        /// Compute demand, giga-ops.
        work_gops: f64,
        /// Input to ship to the executor (0 = none).
        input_bytes: u64,
        /// Parts for the input shipment.
        input_parts: u32,
        /// Job label.
        label: String,
    },
    /// Send an instant message to another host.
    Instant {
        /// Destination host.
        to: NodeId,
        /// Body.
        text: String,
    },
    /// Leave the overlay.
    Leave,
    /// Re-join the overlay after a [`ClientCommand::Leave`] (same peer
    /// identity; the broker refreshes the stored advertisement).
    Rejoin,
}

/// Client behaviour knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The broker's host.
    pub broker: NodeId,
    /// CPU rate to advertise (gops).
    pub cpu_gops: f64,
    /// Whether to accept executable tasks at all.
    pub accepts_tasks: bool,
    /// Probability of accepting an individual task offer.
    pub task_accept_probability: f64,
    /// Probability that an accepted task fails during execution.
    pub task_failure_probability: f64,
    /// Whether to refuse file-transfer petitions (failure injection).
    pub refuse_transfers: bool,
    /// Probability of refusing an individual petition (flaky-peer model;
    /// combines with `refuse_transfers`).
    pub transfer_refuse_probability: f64,
    /// Interval between statistics reports.
    pub stats_interval: SimDuration,
    /// Files this peer shares, published after joining: `(name, bytes)`.
    pub shared_files: Vec<(String, u64)>,
    /// Scripted actions: `(delay from start, command)`.
    pub commands: Vec<(SimDuration, ClientCommand)>,
    /// Parts used when serving an instructed transfer.
    pub serve_parts: u32,
}

impl ClientConfig {
    /// A cooperative client of the given broker.
    pub fn new(broker: NodeId) -> Self {
        ClientConfig {
            broker,
            cpu_gops: 1.0,
            accepts_tasks: true,
            task_accept_probability: 1.0,
            task_failure_probability: 0.0,
            refuse_transfers: false,
            transfer_refuse_probability: 0.0,
            stats_interval: SimDuration::from_secs(30),
            shared_files: Vec::new(),
            commands: Vec::new(),
            serve_parts: 16,
        }
    }

    /// Shares a file under `name`.
    pub fn sharing(mut self, name: impl Into<String>, bytes: u64) -> Self {
        self.shared_files.push((name.into(), bytes));
        self
    }

    /// Schedules a command `delay` after start.
    pub fn at(mut self, delay: SimDuration, cmd: ClientCommand) -> Self {
        self.commands.push((delay, cmd));
        self
    }
}

/// The SimpleClient actor.
pub struct SimpleClient {
    cfg: ClientConfig,
    ids: IdGenerator,
    peer_id: PeerId,
    joined: bool,
    inbound: HashMap<TransferId, InboundTransfer>,
    /// Transfers this peer is *sending* (instructed by the broker).
    outbound: SenderFlow,
    outbound_started: HashMap<TransferId, netsim::time::SimTime>,
    /// Running tasks keyed by their completion-timer tag.
    running: HashMap<u64, RunningTask>,
    next_task_tag: u64,
    stats: Option<PeerStats>,
    sink: Option<RecordSink>,
    /// Counters exposed for tests and examples.
    pub instants_received: u64,
    /// Job completions this client has been notified of: (label, success).
    pub jobs_done: Vec<(String, bool)>,
}

struct RunningTask {
    id: TaskId,
    exec_secs: f64,
    success: bool,
}

impl SimpleClient {
    /// Creates a client; `id_seed` must be unique per client for unique ids.
    pub fn new(cfg: ClientConfig, id_seed: u64) -> Self {
        let mut ids = IdGenerator::new(id_seed);
        SimpleClient {
            peer_id: PeerId::generate(&mut ids),
            ids,
            cfg,
            joined: false,
            inbound: HashMap::new(),
            outbound: SenderFlow::new(),
            outbound_started: HashMap::new(),
            running: HashMap::new(),
            next_task_tag: TASK_TAG_BASE,
            stats: None,
            sink: None,
            instants_received: 0,
            jobs_done: Vec::new(),
        }
    }

    /// Attaches a record sink so peer-to-peer transfers this client serves
    /// appear in the run log.
    pub fn with_sink(mut self, sink: RecordSink) -> Self {
        self.sink = Some(sink.clone());
        self.outbound.set_sink(sink);
        self
    }

    /// The client's overlay identity.
    pub fn peer_id(&self) -> PeerId {
        self.peer_id
    }

    /// Whether the broker has confirmed membership.
    pub fn is_joined(&self) -> bool {
        self.joined
    }

    /// Number of in-flight inbound transfers.
    pub fn inbound_transfers(&self) -> usize {
        self.inbound.len()
    }

    fn touch_gauges(&mut self, now: netsim::time::SimTime) {
        let load = (self.inbound.len() + self.running.len()) as u32;
        if let Some(stats) = &mut self.stats {
            stats.inbox.set(now, load);
            stats
                .outbox
                .set(now, (self.running.len() + self.outbound.len()) as u32);
        }
    }

    fn run_command(&mut self, ctx: &mut Context<OverlayMsg>, cmd: ClientCommand) {
        match cmd {
            ClientCommand::RequestFile { name } => {
                ctx.send(
                    self.cfg.broker,
                    OverlayMsg::FileRequest {
                        requester: self.peer_id,
                        name,
                    },
                );
            }
            ClientCommand::SubmitJob {
                work_gops,
                input_bytes,
                input_parts,
                label,
            } => {
                ctx.send(
                    self.cfg.broker,
                    OverlayMsg::JobSubmit {
                        submitter: self.peer_id,
                        work_gops,
                        input_bytes,
                        input_parts,
                        label,
                    },
                );
            }
            ClientCommand::Instant { to, text } => {
                ctx.send(to, OverlayMsg::Instant { text: text.into() });
            }
            ClientCommand::Leave => {
                ctx.send(self.cfg.broker, OverlayMsg::Leave { peer: self.peer_id });
                self.joined = false;
            }
            ClientCommand::Rejoin => {
                if !self.joined {
                    let adv = PeerAdvertisement {
                        peer: self.peer_id,
                        node: ctx.self_id(),
                        name: ctx.node_name(ctx.self_id()).to_string(),
                        cpu_gops: self.cfg.cpu_gops,
                        accepts_tasks: self.cfg.accepts_tasks,
                        published: ctx.now(),
                        lifetime: DEFAULT_LIFETIME,
                    };
                    ctx.send(self.cfg.broker, OverlayMsg::Join(adv));
                }
            }
        }
    }
}

impl Actor<OverlayMsg> for SimpleClient {
    fn on_start(&mut self, ctx: &mut Context<OverlayMsg>) {
        self.stats = Some(PeerStats::new(ctx.now(), self.cfg.cpu_gops));
        let adv = PeerAdvertisement {
            peer: self.peer_id,
            node: ctx.self_id(),
            name: ctx.node_name(ctx.self_id()).to_string(),
            cpu_gops: self.cfg.cpu_gops,
            accepts_tasks: self.cfg.accepts_tasks,
            published: ctx.now(),
            lifetime: DEFAULT_LIFETIME,
        };
        ctx.send(self.cfg.broker, OverlayMsg::Join(adv));
        ctx.schedule_timer(self.cfg.stats_interval, STATS_TIMER_TAG);
        let commands = std::mem::take(&mut self.cfg.commands);
        for (i, (delay, _)) in commands.iter().enumerate() {
            ctx.schedule_timer(*delay, CMD_TAG_BASE + i as u64);
        }
        self.cfg.commands = commands;
    }

    fn on_message(&mut self, ctx: &mut Context<OverlayMsg>, from: NodeId, msg: OverlayMsg) {
        let now = ctx.now();
        match msg {
            OverlayMsg::JoinAck { .. } => {
                self.joined = true;
                // Publish shared content once membership is confirmed.
                let shared = self.cfg.shared_files.clone();
                for (name, bytes) in shared {
                    let adv = ContentAdvertisement {
                        content: ContentId::generate(&mut self.ids),
                        owner: self.peer_id,
                        name,
                        size_bytes: bytes,
                        published: now,
                        lifetime: DEFAULT_LIFETIME,
                    };
                    ctx.send(self.cfg.broker, OverlayMsg::PublishContent(adv));
                }
            }
            OverlayMsg::FilePetition {
                transfer,
                num_parts,
                sent_at,
                ..
            } => {
                // A duplicate petition (retransmitted after a lost ack) must
                // not reset in-progress receive state.
                let already_known = self.inbound.contains_key(&transfer);
                let accepted = already_known
                    || (!self.cfg.refuse_transfers
                        && !ctx.rng().bernoulli(self.cfg.transfer_refuse_probability));
                if accepted && !already_known {
                    self.inbound
                        .insert(transfer, InboundTransfer::new(transfer, num_parts, now));
                    self.touch_gauges(now);
                }
                ctx.send(
                    from,
                    OverlayMsg::PetitionAck {
                        transfer,
                        accepted,
                        petition_sent_at: sent_at,
                        handled_at: now,
                    },
                );
            }
            OverlayMsg::FilePart {
                transfer,
                index,
                size,
            } => {
                if let Some(inb) = self.inbound.get_mut(&transfer) {
                    // Duplicates still get a confirm — the original confirm
                    // may have been lost — but are not counted twice. Gaps
                    // (an index ahead of the stop-and-wait window) are
                    // rejected and never confirmed: confirming one would
                    // advance the sender past a part we don't have.
                    let receipt = inb.on_part(index, size);
                    if receipt == PartReceipt::Gap {
                        let expected = inb.received;
                        if ctx.trace_enabled() {
                            ctx.trace_event(TraceEventKind::PartGap {
                                transfer: transfer.raw(),
                                index,
                                expected,
                            });
                        }
                    } else {
                        if receipt == PartReceipt::Last {
                            // The receiver-side tally is complete the moment
                            // the last part lands; don't wait for
                            // TransferComplete, which is unacked and can be
                            // lost on a lossy transport.
                            let bytes = inb.bytes;
                            if let Some(sink) = &self.sink {
                                sink.with(|log| {
                                    if let Some(rec) = log.transfer_mut(transfer) {
                                        rec.receiver_bytes = Some(bytes);
                                    }
                                });
                            }
                        }
                        ctx.send(from, OverlayMsg::PartConfirm { transfer, index });
                    }
                }
                // Parts for unknown transfers are silently dropped (stale).
            }
            OverlayMsg::TransferComplete { transfer } | OverlayMsg::TransferCancel { transfer } => {
                let inb = self.inbound.remove(&transfer);
                let completed = inb.as_ref().is_some_and(|i| i.received >= i.expected_parts);
                // Report the receiver-side byte tally back into the shared
                // record: experiments cross-check it against file_size.
                if let (Some(sink), Some(inb)) = (&self.sink, inb.as_ref()) {
                    let bytes = inb.bytes;
                    sink.with(|log| {
                        if let Some(rec) = log.transfer_mut(transfer) {
                            rec.receiver_bytes = Some(bytes);
                        }
                    });
                }
                if let Some(stats) = &mut self.stats {
                    stats.record_file_send(completed);
                }
                self.touch_gauges(now);
            }
            // ---- sender side: the broker told us to serve a file --------
            OverlayMsg::TransferInstruction {
                to_node,
                file,
                num_parts,
            } => {
                let id = TransferId::generate(&mut self.ids);
                let outbound = OutboundTransfer::new(id, file.clone(), to_node, num_parts, now);
                let actual_parts = outbound.num_parts();
                let to_name = std::sync::Arc::from(ctx.node_name(to_node));
                self.outbound.begin(outbound, to_name, now);
                if ctx.trace_enabled() {
                    ctx.trace_event(TraceEventKind::SpanBegin {
                        span: SpanKind::Transfer,
                        key: id.raw(),
                    });
                    ctx.trace_event(TraceEventKind::PetitionSent {
                        transfer: id.raw(),
                        to: to_node,
                        bytes: file.size_bytes,
                        parts: actual_parts,
                    });
                }
                ctx.send(
                    to_node,
                    OverlayMsg::FilePetition {
                        transfer: id,
                        file,
                        num_parts: actual_parts,
                        sent_at: now,
                    },
                );
                self.outbound_started.insert(id, now);
                self.touch_gauges(now);
            }
            OverlayMsg::PetitionAck {
                transfer,
                accepted,
                handled_at,
                ..
            } => {
                // Only the first ack carries timing information; a duplicate
                // (retransmitted petition) must not overwrite the milestones.
                let first_ack = self.outbound.is_awaiting_ack(transfer);
                if ctx.trace_enabled() {
                    ctx.trace_event(TraceEventKind::PetitionAcked {
                        transfer: transfer.raw(),
                        accepted,
                    });
                }
                if first_ack {
                    self.outbound.note_ack_times(transfer, handled_at, now);
                }
                let next = self.outbound.on_ack(transfer, accepted);
                if let Some((index, size)) = next {
                    self.outbound.note_part_sent(transfer, index, size, now);
                    if ctx.trace_enabled() {
                        ctx.trace_event(TraceEventKind::PartSent {
                            transfer: transfer.raw(),
                            index,
                            bytes: size,
                        });
                    }
                    ctx.send(
                        from,
                        OverlayMsg::FilePart {
                            transfer,
                            index,
                            size,
                        },
                    );
                } else if !accepted {
                    if let Some(t) = self.outbound.finish(transfer) {
                        let started = self.outbound_started.remove(&transfer);
                        ctx.send(
                            self.cfg.broker,
                            OverlayMsg::TransferReport {
                                transfer,
                                ok: false,
                                elapsed_secs: started
                                    .map(|s| now.duration_since(s).as_secs_f64())
                                    .unwrap_or(0.0),
                                bytes: t.file.size_bytes,
                            },
                        );
                        self.outbound.stamp_finished(transfer, now, false);
                        if ctx.trace_enabled() {
                            ctx.trace_event(TraceEventKind::TransferCompleted {
                                transfer: transfer.raw(),
                                ok: false,
                            });
                            ctx.trace_event(TraceEventKind::SpanEnd {
                                span: SpanKind::Transfer,
                                key: transfer.raw(),
                                ok: false,
                            });
                        }
                    }
                }
            }
            OverlayMsg::PartConfirm { transfer, index } => {
                // First-confirm-wins: validate against the stop-and-wait
                // window BEFORE touching the record, so a duplicate confirm
                // (the retransmitted original racing a resent part's ack)
                // cannot move `confirmed_at` forward.
                let accepted = self.outbound.accepts_confirm(transfer, index);
                if ctx.trace_enabled() {
                    ctx.trace_event(TraceEventKind::PartConfirmed {
                        transfer: transfer.raw(),
                        index,
                        accepted,
                    });
                }
                if accepted {
                    self.outbound.note_confirm(transfer, index, now);
                }
                let outcome = self.outbound.on_confirm(transfer, index);
                match outcome {
                    Some((Some((next_index, size)), _)) => {
                        self.outbound
                            .note_part_sent(transfer, next_index, size, now);
                        if ctx.trace_enabled() {
                            ctx.trace_event(TraceEventKind::PartSent {
                                transfer: transfer.raw(),
                                index: next_index,
                                bytes: size,
                            });
                        }
                        ctx.send(
                            from,
                            OverlayMsg::FilePart {
                                transfer,
                                index: next_index,
                                size,
                            },
                        );
                    }
                    Some((None, true)) => {
                        let t = self.outbound.finish(transfer).expect("present");
                        let started = self.outbound_started.remove(&transfer);
                        if ctx.trace_enabled() {
                            ctx.trace_event(TraceEventKind::TransferCompleted {
                                transfer: transfer.raw(),
                                ok: true,
                            });
                            ctx.trace_event(TraceEventKind::SpanEnd {
                                span: SpanKind::Transfer,
                                key: transfer.raw(),
                                ok: true,
                            });
                        }
                        ctx.send(from, OverlayMsg::TransferComplete { transfer });
                        let elapsed = started
                            .map(|s| now.duration_since(s).as_secs_f64())
                            .unwrap_or(0.0);
                        ctx.send(
                            self.cfg.broker,
                            OverlayMsg::TransferReport {
                                transfer,
                                ok: true,
                                elapsed_secs: elapsed,
                                bytes: t.file.size_bytes,
                            },
                        );
                        self.outbound.stamp_finished(transfer, now, true);
                        if let Some(stats) = &mut self.stats {
                            stats.record_file_send(true);
                        }
                        self.touch_gauges(now);
                    }
                    _ => {}
                }
            }
            OverlayMsg::TaskOffer { task, .. } => {
                let accept =
                    self.cfg.accepts_tasks && ctx.rng().bernoulli(self.cfg.task_accept_probability);
                if !accept {
                    ctx.send(from, OverlayMsg::TaskReject { task: task.id });
                    return;
                }
                ctx.send(from, OverlayMsg::TaskAccept { task: task.id });
                let exec = ctx.execution_time(task.work_gops);
                let success = !ctx.rng().bernoulli(self.cfg.task_failure_probability);
                let tag = self.next_task_tag;
                self.next_task_tag += 1;
                self.running.insert(
                    tag,
                    RunningTask {
                        id: task.id,
                        exec_secs: exec.as_secs_f64(),
                        success,
                    },
                );
                self.touch_gauges(now);
                ctx.schedule_timer(exec, tag);
            }
            OverlayMsg::JobDone { label, success, .. } => {
                self.jobs_done.push((label, success));
            }
            OverlayMsg::Ping { nonce, sent_at } => {
                ctx.send(from, OverlayMsg::Pong { nonce, sent_at });
            }
            OverlayMsg::Instant { .. } => {
                self.instants_received += 1;
            }
            _ => {
                // Remaining messages are not addressed to clients.
            }
        }
        if let Some(stats) = &mut self.stats {
            stats.record_message(now, true);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<OverlayMsg>, _timer: TimerId, tag: u64) {
        let now = ctx.now();
        if tag == STATS_TIMER_TAG {
            if let Some(stats) = &mut self.stats {
                stats
                    .inbox
                    .set(now, (self.inbound.len() + self.running.len()) as u32);
                let snapshot = stats.snapshot(now, 24);
                ctx.send(
                    self.cfg.broker,
                    OverlayMsg::StatsReport {
                        peer: self.peer_id,
                        snapshot,
                    },
                );
            }
            ctx.schedule_timer(self.cfg.stats_interval, STATS_TIMER_TAG);
            return;
        }
        if (CMD_TAG_BASE..TASK_TAG_BASE).contains(&tag) {
            let idx = (tag - CMD_TAG_BASE) as usize;
            if let Some((_, cmd)) = self.cfg.commands.get(idx).cloned() {
                self.run_command(ctx, cmd);
            }
            return;
        }
        if let Some(done) = self.running.remove(&tag) {
            if let Some(stats) = &mut self.stats {
                stats.record_task_execution(done.success);
            }
            self.touch_gauges(now);
            ctx.send(
                self.cfg.broker,
                OverlayMsg::TaskResult {
                    task: done.id,
                    success: done.success,
                    exec_secs: done.exec_secs,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Client behaviour is exercised end-to-end in the broker tests and the
    // crate-level integration tests; here we check the pure bits.

    #[test]
    fn unique_peer_ids_per_seed() {
        let a = SimpleClient::new(ClientConfig::new(NodeId(0)), 1);
        let b = SimpleClient::new(ClientConfig::new(NodeId(0)), 2);
        assert_ne!(a.peer_id(), b.peer_id());
        let a2 = SimpleClient::new(ClientConfig::new(NodeId(0)), 1);
        assert_eq!(a.peer_id(), a2.peer_id());
    }

    #[test]
    fn starts_unjoined_and_idle() {
        let c = SimpleClient::new(ClientConfig::new(NodeId(0)), 3);
        assert!(!c.is_joined());
        assert_eq!(c.inbound_transfers(), 0);
        assert_eq!(c.instants_received, 0);
        assert!(c.jobs_done.is_empty());
    }

    #[test]
    fn config_defaults_are_cooperative() {
        let cfg = ClientConfig::new(NodeId(7));
        assert!(cfg.accepts_tasks);
        assert_eq!(cfg.task_accept_probability, 1.0);
        assert_eq!(cfg.task_failure_probability, 0.0);
        assert!(!cfg.refuse_transfers);
        assert!(cfg.shared_files.is_empty());
        assert!(cfg.commands.is_empty());
    }

    #[test]
    fn config_builders() {
        let cfg = ClientConfig::new(NodeId(0))
            .sharing("lecture.mp4", 100 << 20)
            .at(
                SimDuration::from_secs(5),
                ClientCommand::RequestFile { name: "x".into() },
            );
        assert_eq!(cfg.shared_files.len(), 1);
        assert_eq!(cfg.commands.len(), 1);
    }
}
