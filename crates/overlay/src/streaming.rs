//! Streaming-on-demand viewers: playback buffers over piece exchange.
//!
//! A [`StreamingClient`] joins its broker like any edge peer, then pulls
//! a piece-divided media stream from seed peers: it keeps a bounded
//! request window open, buffers [`StreamConfig::startup_pieces`] pieces
//! before starting playback, consumes one piece per
//! [`StreamConfig::piece_secs`] of virtual time, and stalls (a rebuffer
//! event) whenever the playhead reaches a piece that has not arrived.
//! Which piece to request next is the [`PiecePolicy`] — the axis the
//! streaming experiments sweep (after arXiv:1402.2187's comparison of
//! sequential, windowed, and rarest-within-window selection).
//!
//! Pieces are served by other streaming peers: each piece index hashes
//! to a seed among [`StreamConfig::owners`], and every client answers
//! [`OverlayMsg::PieceRequest`] with a [`OverlayMsg::Piece`] whose wire
//! size is the full piece, so the owner's access uplink serializes the
//! delivery — the peer upload distribution shapes startup delay and
//! rebuffering exactly as it does in deployment studies.
//!
//! Determinism: the client draws nothing from RNGs at message time.
//! Owner assignment and piece availability derive from
//! [`StreamConfig::content_seed`] by splitmix64 hashing, so a fixed
//! `(config, seed)` streams identically at any shard worker count.

use std::collections::BTreeSet;
use std::sync::Arc;

use netsim::engine::{Actor, Context, TimerId};
use netsim::metrics::{MetricId, Metrics};
use netsim::node::NodeId;
use netsim::time::{SimDuration, SimTime};

use crate::advertisement::{PeerAdvertisement, DEFAULT_LIFETIME};
use crate::id::{IdGenerator, PeerId};
use crate::message::OverlayMsg;
use crate::records::{RecordSink, StreamRecord};

/// SplitMix64: owner and availability hashing. Local on purpose — the
/// overlay crate must not depend on workloads' rng helpers.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash domain for piece → owner assignment.
const OWNER_SALT: u64 = 0x57E4_0A11;
/// Hash domain for the exogenous piece-availability ranking.
const AVAIL_SALT: u64 = 0x57E4_0AA1;
/// Timer tag: scripted arrival (join the broker, start streaming).
const TAG_JOIN: u64 = 1;
/// Timer tag: the playhead finishes the current piece.
const TAG_PLAY: u64 = 2;

/// How a viewer picks the next piece to request. The window below is
/// [`StreamConfig::window`]; `Sequential` is the degenerate window of 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PiecePolicy {
    /// Strict playback order, one request in flight (stop-and-wait).
    Sequential,
    /// Playback order, up to `window` requests in flight.
    Windowed,
    /// Rarest piece first *within* the playback window, up to `window`
    /// in flight — the BitTorrent-style compromise between swarm health
    /// and playback deadlines.
    RarestWindow,
}

impl PiecePolicy {
    /// Every policy, in canonical (grid-expansion and CLI listing) order.
    pub const ALL: [PiecePolicy; 3] = [
        PiecePolicy::Sequential,
        PiecePolicy::Windowed,
        PiecePolicy::RarestWindow,
    ];

    /// The canonical spelling used by CLIs, CSV columns, and grid specs.
    pub fn name(self) -> &'static str {
        match self {
            PiecePolicy::Sequential => "sequential",
            PiecePolicy::Windowed => "windowed",
            PiecePolicy::RarestWindow => "rarest-window",
        }
    }

    /// Parses a canonical spelling back into the axis value. Also accepts
    /// `rarest`, the common shorthand.
    pub fn parse(name: &str) -> Option<PiecePolicy> {
        if name == "rarest" {
            return Some(PiecePolicy::RarestWindow);
        }
        PiecePolicy::ALL.into_iter().find(|p| p.name() == name)
    }

    /// The request-window width this policy actually runs with.
    pub fn effective_window(self, window: u32) -> u32 {
        match self {
            PiecePolicy::Sequential => 1,
            PiecePolicy::Windowed | PiecePolicy::RarestWindow => window.max(1),
        }
    }
}

impl std::fmt::Display for PiecePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Exogenous availability rank of a piece (lower = rarer). A determin-
/// istic per-content hash, standing in for swarm-wide piece census the
/// simulated viewers have no gossip channel for.
pub fn availability_rank(content_seed: u64, piece: u32) -> u64 {
    splitmix64(content_seed ^ (AVAIL_SALT.wrapping_add(piece as u64))) % 16
}

/// Behaviour knobs for a [`StreamingClient`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// The home broker (joined at arrival; registry/gossip accounting).
    pub broker: NodeId,
    /// Piece-selection policy.
    pub policy: PiecePolicy,
    /// Request-window width for the windowed policies (min 1).
    pub window: u32,
    /// Pieces the stream is divided into (min 1).
    pub total_pieces: u32,
    /// Payload bytes per piece.
    pub piece_bytes: u64,
    /// Playback duration of one piece.
    pub piece_secs: SimDuration,
    /// Contiguous pieces buffered before playback starts (min 1).
    pub startup_pieces: u32,
    /// When this viewer joins and begins requesting.
    pub arrival: SimDuration,
    /// Seed peers that serve pieces; piece `i` lives on
    /// `owners[hash(i) % len]` (self is skipped to the next seed).
    pub owners: Arc<[NodeId]>,
    /// Per-content hash seed for owner assignment and availability.
    pub content_seed: u64,
    /// Advertised CPU capacity, giga-ops.
    pub cpu_gops: f64,
}

/// Pre-resolved streaming counters (`streaming.*`). Durations are
/// tallied as interned millisecond counters so the metrics snapshot and
/// the time series stay integer-exact and worker-count invariant.
struct StreamingCounters {
    streams_started: MetricId,
    pieces_requested: MetricId,
    pieces_served: MetricId,
    pieces_received: MetricId,
    playbacks_started: MetricId,
    startup_delay_ms: MetricId,
    rebuffers: MetricId,
    rebuffer_ms: MetricId,
    completions: MetricId,
}

impl StreamingCounters {
    fn resolve(metrics: &mut Metrics) -> Self {
        StreamingCounters {
            streams_started: metrics.counter_id("streaming.streams_started"),
            pieces_requested: metrics.counter_id("streaming.pieces_requested"),
            pieces_served: metrics.counter_id("streaming.pieces_served"),
            pieces_received: metrics.counter_id("streaming.pieces_received"),
            playbacks_started: metrics.counter_id("streaming.playbacks_started"),
            startup_delay_ms: metrics.counter_id("streaming.startup_delay_ms"),
            rebuffers: metrics.counter_id("streaming.rebuffers"),
            rebuffer_ms: metrics.counter_id("streaming.rebuffer_ms"),
            completions: metrics.counter_id("streaming.completions"),
        }
    }
}

/// A streaming viewer (and seed): joins its broker, pulls pieces under a
/// [`PiecePolicy`], plays them back against a buffer, and serves piece
/// requests from fellow viewers.
pub struct StreamingClient {
    cfg: StreamConfig,
    peer_id: PeerId,
    sink: RecordSink,
    have: Vec<bool>,
    in_flight: BTreeSet<u32>,
    /// Lowest piece index not yet received (window anchor).
    first_missing: u32,
    /// Next piece the playhead will consume.
    next_play: u32,
    /// When requesting began (join-ack instant).
    began_at: Option<SimTime>,
    /// Playback has started (startup buffer filled once).
    playback_started: bool,
    /// A `TAG_PLAY` timer is outstanding.
    playing: bool,
    /// When the current stall began, if stalled.
    stalled_since: Option<SimTime>,
    done: bool,
    counters: Option<StreamingCounters>,
}

impl StreamingClient {
    /// Creates a viewer; `id_seed` fixes its [`PeerId`].
    pub fn new(cfg: StreamConfig, id_seed: u64, sink: RecordSink) -> Self {
        assert!(cfg.total_pieces >= 1, "a stream needs at least one piece");
        assert!(!cfg.owners.is_empty(), "a stream needs seed peers");
        let mut ids = IdGenerator::new(id_seed);
        let total = cfg.total_pieces as usize;
        StreamingClient {
            peer_id: PeerId::generate(&mut ids),
            have: vec![false; total],
            in_flight: BTreeSet::new(),
            first_missing: 0,
            next_play: 0,
            began_at: None,
            playback_started: false,
            playing: false,
            stalled_since: None,
            done: false,
            counters: None,
            cfg,
            sink,
        }
    }

    /// This viewer's stable identity.
    pub fn peer_id(&self) -> PeerId {
        self.peer_id
    }

    /// Whether the whole stream has been played back.
    pub fn is_done(&self) -> bool {
        self.done
    }

    fn bump(&mut self, ctx: &mut Context<OverlayMsg>, which: fn(&StreamingCounters) -> MetricId) {
        self.bump_by(ctx, which, 1);
    }

    fn bump_by(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        which: fn(&StreamingCounters) -> MetricId,
        by: u64,
    ) {
        let ids = self
            .counters
            .get_or_insert_with(|| StreamingCounters::resolve(ctx.metrics()));
        let id = which(ids);
        ctx.metrics().incr_id(id, by);
    }

    /// The seed serving `piece` (self skipped to the next ring slot).
    fn owner_of(&self, me: NodeId, piece: u32) -> NodeId {
        let n = self.cfg.owners.len();
        let mut idx = (splitmix64(self.cfg.content_seed ^ (OWNER_SALT.wrapping_add(piece as u64)))
            as usize)
            % n;
        if self.cfg.owners[idx] == me {
            idx = (idx + 1) % n;
        }
        self.cfg.owners[idx]
    }

    /// Tops the request window up: advances the window anchor past
    /// received pieces, then picks missing, not-in-flight pieces inside
    /// `[first_missing, first_missing + window)` in policy order. Loops
    /// while locally-owned pieces materialize, so a window of local
    /// pieces never wedges the stream.
    fn request_more(&mut self, ctx: &mut Context<OverlayMsg>) {
        if self.done || self.began_at.is_none() {
            return;
        }
        let window = self.cfg.policy.effective_window(self.cfg.window);
        let total = self.cfg.total_pieces;
        let me = ctx.self_id();
        loop {
            while (self.first_missing as usize) < self.have.len()
                && self.have[self.first_missing as usize]
            {
                self.first_missing += 1;
            }
            let base = self.first_missing;
            if base >= total {
                return;
            }
            let end = base.saturating_add(window).min(total);
            let mut candidates: Vec<u32> = (base..end)
                .filter(|&p| !self.have[p as usize] && !self.in_flight.contains(&p))
                .collect();
            if self.cfg.policy == PiecePolicy::RarestWindow {
                candidates.sort_by_key(|&p| (availability_rank(self.cfg.content_seed, p), p));
            }
            let mut materialized = false;
            for p in candidates {
                if self.in_flight.len() >= window as usize {
                    break;
                }
                let owner = self.owner_of(me, p);
                if owner == me {
                    // Sole seed of this piece: materialize it locally.
                    self.have[p as usize] = true;
                    materialized = true;
                    continue;
                }
                self.in_flight.insert(p);
                self.bump(ctx, |c| c.pieces_requested);
                ctx.send(owner, OverlayMsg::PieceRequest { piece: p });
            }
            if !materialized {
                return;
            }
        }
    }

    /// Starts or resumes playback when the buffer allows it.
    fn check_playback(&mut self, ctx: &mut Context<OverlayMsg>) {
        if self.done || self.playing {
            return;
        }
        let now = ctx.now();
        if !self.playback_started {
            let startup = self.cfg.startup_pieces.max(1).min(self.cfg.total_pieces);
            if self.first_missing >= startup {
                self.playback_started = true;
                self.playing = true;
                let began = self.began_at.expect("streaming began before playback");
                let delay = now.duration_since(began);
                self.bump(ctx, |c| c.playbacks_started);
                self.bump_by(ctx, |c| c.startup_delay_ms, delay.as_nanos() / 1_000_000);
                let me = ctx.self_id();
                self.sink.with(|log| {
                    if let Some(s) = log.stream_mut(me) {
                        s.startup_delay_secs = Some(delay.as_secs_f64());
                    }
                });
                ctx.schedule_timer(self.cfg.piece_secs, TAG_PLAY);
            }
        } else if self.stalled_since.is_some() && self.have[self.next_play as usize] {
            let stalled_at = self.stalled_since.take().expect("checked above");
            let stall = now.duration_since(stalled_at);
            self.bump_by(ctx, |c| c.rebuffer_ms, stall.as_nanos() / 1_000_000);
            let me = ctx.self_id();
            self.sink.with(|log| {
                if let Some(s) = log.stream_mut(me) {
                    s.rebuffer_secs += stall.as_secs_f64();
                }
            });
            self.playing = true;
            ctx.schedule_timer(self.cfg.piece_secs, TAG_PLAY);
        }
    }
}

impl Actor<OverlayMsg> for StreamingClient {
    fn on_start(&mut self, ctx: &mut Context<OverlayMsg>) {
        ctx.schedule_timer(self.cfg.arrival, TAG_JOIN);
    }

    fn on_message(&mut self, ctx: &mut Context<OverlayMsg>, from: NodeId, msg: OverlayMsg) {
        match msg {
            OverlayMsg::JoinAck { .. } => {
                if self.began_at.is_some() {
                    return; // duplicate ack
                }
                let now = ctx.now();
                self.began_at = Some(now);
                self.bump(ctx, |c| c.streams_started);
                let me = ctx.self_id();
                let name: Arc<str> = Arc::from(ctx.node_name(me));
                let total = self.cfg.total_pieces;
                self.sink.with(|log| {
                    log.streams.push(StreamRecord {
                        node: me,
                        name,
                        total_pieces: total,
                        began_at: now,
                        startup_delay_secs: None,
                        pieces_received: 0,
                        rebuffers: 0,
                        rebuffer_secs: 0.0,
                        completed_at: None,
                    });
                });
                self.request_more(ctx);
                self.check_playback(ctx);
            }
            OverlayMsg::PieceRequest { piece } => {
                self.bump(ctx, |c| c.pieces_served);
                let size = self.cfg.piece_bytes;
                ctx.send(from, OverlayMsg::Piece { piece, size });
            }
            OverlayMsg::Piece { piece, .. } => {
                self.in_flight.remove(&piece);
                let idx = piece as usize;
                if idx < self.have.len() && !self.have[idx] {
                    self.have[idx] = true;
                    self.bump(ctx, |c| c.pieces_received);
                    let me = ctx.self_id();
                    self.sink.with(|log| {
                        if let Some(s) = log.stream_mut(me) {
                            s.pieces_received += 1;
                        }
                    });
                }
                self.request_more(ctx);
                self.check_playback(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<OverlayMsg>, _timer: TimerId, tag: u64) {
        match tag {
            TAG_JOIN => {
                let adv = PeerAdvertisement {
                    peer: self.peer_id,
                    node: ctx.self_id(),
                    name: ctx.node_name(ctx.self_id()).to_string(),
                    cpu_gops: self.cfg.cpu_gops,
                    accepts_tasks: false,
                    published: ctx.now(),
                    lifetime: DEFAULT_LIFETIME,
                };
                ctx.send(self.cfg.broker, OverlayMsg::Join(adv));
            }
            TAG_PLAY => {
                if self.done || !self.playing {
                    return;
                }
                self.next_play += 1;
                if self.next_play >= self.cfg.total_pieces {
                    self.done = true;
                    self.playing = false;
                    let now = ctx.now();
                    self.bump(ctx, |c| c.completions);
                    let me = ctx.self_id();
                    self.sink.with(|log| {
                        if let Some(s) = log.stream_mut(me) {
                            s.completed_at = Some(now);
                        }
                    });
                } else if self.have[self.next_play as usize] {
                    ctx.schedule_timer(self.cfg.piece_secs, TAG_PLAY);
                } else {
                    // The playhead outran the buffer: stall until the
                    // missing piece arrives.
                    self.playing = false;
                    self.stalled_since = Some(ctx.now());
                    self.bump(ctx, |c| c.rebuffers);
                    let me = ctx.self_id();
                    self.sink.with(|log| {
                        if let Some(s) = log.stream_mut(me) {
                            s.rebuffers += 1;
                        }
                    });
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::{Broker, BrokerConfig};
    use netsim::engine::{Engine, RunOutcome};
    use netsim::link::{AccessLink, PathSpec};
    use netsim::node::NodeSpec;
    use netsim::time::SimTime;
    use netsim::topology::Topology;
    use netsim::transport::TransportConfig;

    fn stream_net(
        viewers: usize,
        uplink_mbps: f64,
        cfg_of: impl Fn(NodeId, Arc<[NodeId]>) -> StreamConfig,
    ) -> (RecordSink, RunOutcome) {
        let mut topo = Topology::new();
        let broker = topo.add_node(
            NodeSpec::responsive("broker"),
            AccessLink::symmetric_mbps(100.0, 0.0001),
        );
        let mut nodes = Vec::new();
        for i in 0..viewers {
            let v = topo.add_node(
                NodeSpec::responsive(format!("viewer{i}")),
                AccessLink::symmetric_mbps(uplink_mbps, 0.0003),
            );
            topo.set_path_symmetric(broker, v, PathSpec::from_owd_ms(15.0, 0.0));
            nodes.push(v);
        }
        for i in 0..viewers {
            for j in (i + 1)..viewers {
                topo.set_path_symmetric(nodes[i], nodes[j], PathSpec::from_owd_ms(25.0, 0.0));
            }
        }
        let owners: Arc<[NodeId]> = nodes.clone().into();
        let sink = RecordSink::new();
        let mut engine = Engine::new(topo, TransportConfig::default(), 11);
        let mut broker_cfg = BrokerConfig::new(5);
        broker_cfg.stop_when_idle = false;
        engine.register(broker, Box::new(Broker::new(broker_cfg, sink.clone())));
        for (i, &v) in nodes.iter().enumerate() {
            let cfg = cfg_of(broker, owners.clone());
            engine.register(
                v,
                Box::new(StreamingClient::new(cfg, 900 + i as u64, sink.clone())),
            );
        }
        let outcome = engine.run_until(SimTime::ZERO + SimDuration::from_secs(3600));
        (sink, outcome)
    }

    fn base_cfg(broker: NodeId, owners: Arc<[NodeId]>) -> StreamConfig {
        StreamConfig {
            broker,
            policy: PiecePolicy::Sequential,
            window: 1,
            total_pieces: 24,
            piece_bytes: 256 << 10,
            piece_secs: SimDuration::from_secs(2),
            startup_pieces: 3,
            arrival: SimDuration::from_secs(1),
            owners,
            content_seed: 404,
            cpu_gops: 1.0,
        }
    }

    #[test]
    fn policy_names_round_trip() {
        for p in PiecePolicy::ALL {
            assert_eq!(PiecePolicy::parse(p.name()), Some(p));
        }
        assert_eq!(
            PiecePolicy::parse("rarest"),
            Some(PiecePolicy::RarestWindow)
        );
        assert_eq!(PiecePolicy::parse("psychic"), None);
    }

    #[test]
    fn sequential_window_is_one() {
        assert_eq!(PiecePolicy::Sequential.effective_window(16), 1);
        assert_eq!(PiecePolicy::Windowed.effective_window(16), 16);
        assert_eq!(PiecePolicy::RarestWindow.effective_window(0), 1);
    }

    #[test]
    fn availability_is_deterministic() {
        for p in 0..64 {
            assert_eq!(availability_rank(7, p), availability_rank(7, p));
        }
        // Not constant: some pieces must be rarer than others.
        let ranks: std::collections::HashSet<u64> =
            (0..64).map(|p| availability_rank(7, p)).collect();
        assert!(ranks.len() > 1);
    }

    #[test]
    fn sequential_viewers_play_the_whole_stream() {
        let (sink, _) = stream_net(3, 20.0, base_cfg);
        let log = sink.drain();
        assert_eq!(log.streams.len(), 3, "every viewer starts a stream");
        for s in &log.streams {
            assert_eq!(s.pieces_received, s.total_pieces, "viewer {}", s.name);
            let delay = s.startup_delay_secs.expect("playback started");
            assert!(delay > 0.0, "startup buffering takes time");
            assert!(
                s.completed_at.is_some(),
                "viewer {} finished playback",
                s.name
            );
            assert!(s.rebuffer_secs >= 0.0);
            assert!(s.total_secs().unwrap() >= delay);
        }
    }

    #[test]
    fn starved_uplinks_force_rebuffering() {
        // Pieces play faster than a 0.6 Mbit/s uplink can ship them, so
        // the playhead must outrun the buffer and stall.
        let (sink, _) = stream_net(3, 0.6, |b, o| StreamConfig {
            piece_secs: SimDuration::from_millis(500),
            startup_pieces: 1,
            ..base_cfg(b, o)
        });
        let log = sink.drain();
        let total_rebuffers: u32 = log.streams.iter().map(|s| s.rebuffers).sum();
        assert!(total_rebuffers > 0, "starved playback must stall");
        let stalled = log
            .streams
            .iter()
            .find(|s| s.rebuffers > 0)
            .expect("some viewer stalled");
        assert!(stalled.rebuffer_secs > 0.0, "stalls accumulate duration");
    }

    #[test]
    fn window_width_trades_startup_delay() {
        // With bandwidth-bound pieces (256 KiB at 8 Mbit/s the
        // serialization time dwarfs the RTT), a wide request window
        // makes lookahead pieces compete with the startup-critical
        // prefix, so sequential starts playback soonest — the classic
        // in-order vs lookahead trade-off of the selection studies.
        let run = |policy, window| {
            let (sink, _) = stream_net(4, 8.0, move |b, o| StreamConfig {
                policy,
                window,
                ..base_cfg(b, o)
            });
            let log = sink.drain();
            let delays: Vec<f64> = log
                .streams
                .iter()
                .map(|s| s.startup_delay_secs.expect("started"))
                .collect();
            delays.iter().sum::<f64>() / delays.len() as f64
        };
        let seq = run(PiecePolicy::Sequential, 1);
        let win = run(PiecePolicy::Windowed, 8);
        assert!(
            seq < win,
            "lookahead must delay the in-order startup prefix \
             (sequential {seq:.2}s vs windowed {win:.2}s)"
        );
    }

    #[test]
    fn rarest_window_reorders_but_still_completes() {
        let (sink, _) = stream_net(3, 12.0, |b, o| StreamConfig {
            policy: PiecePolicy::RarestWindow,
            window: 6,
            ..base_cfg(b, o)
        });
        let log = sink.drain();
        for s in &log.streams {
            assert_eq!(s.pieces_received, s.total_pieces);
            assert!(s.completed_at.is_some(), "viewer {} finished", s.name);
        }
    }
}
