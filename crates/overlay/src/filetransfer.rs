//! The chunked file-transfer protocol (paper §4.2, "File transmission").
//!
//! The paper's protocol: a file is split into fixed-size parts; the sender
//! first sends a *petition* announcing the transfer; the peer confirms; each
//! part is then sent and, "as soon as a peer receives the part, it should
//! confirm correct reception of the file and its availability to receive
//! another part" — i.e. stop-and-wait at part granularity. Sending the file
//! whole is the degenerate one-part case.

use netsim::time::SimTime;

use crate::id::{ContentId, TransferId};

/// Metadata of a file being transferred.
#[derive(Debug, Clone, PartialEq)]
pub struct FileMeta {
    /// Content identity.
    pub content: ContentId,
    /// File name.
    pub name: String,
    /// Total size in bytes.
    pub size_bytes: u64,
}

impl FileMeta {
    /// Approximate wire size of the metadata itself.
    pub fn wire_size(&self) -> u64 {
        48 + self.name.len() as u64
    }
}

/// Splits `size_bytes` into `num_parts` part sizes: all parts equal except
/// the last, which absorbs the remainder. Zero-part requests collapse to one.
pub fn split_parts(size_bytes: u64, num_parts: u32) -> Vec<u64> {
    let n = num_parts.max(1) as u64;
    if size_bytes == 0 {
        return vec![0];
    }
    let base = size_bytes / n;
    let rem = size_bytes % n;
    let mut parts: Vec<u64> = (0..n).map(|_| base).collect();
    if let Some(last) = parts.last_mut() {
        *last += rem;
    }
    // Degenerate: more parts than bytes → drop empty parts.
    parts.retain(|&p| p > 0);
    if parts.is_empty() {
        parts.push(size_bytes);
    }
    parts
}

/// Sender-side state of one outbound transfer (stop-and-wait).
#[derive(Debug, Clone, PartialEq)]
pub struct OutboundTransfer {
    /// Transfer identity.
    pub id: TransferId,
    /// What is being sent.
    pub file: FileMeta,
    /// Destination host.
    pub to: netsim::node::NodeId,
    /// Part sizes (computed once, immutable).
    pub parts: Vec<u64>,
    /// Index of the next part to send.
    pub next_part: u32,
    /// Protocol phase.
    pub phase: TransferPhase,
    /// When the petition was sent.
    pub petition_sent_at: SimTime,
}

/// Phase of an outbound transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferPhase {
    /// Petition sent; waiting for the peer to confirm readiness.
    AwaitingPetitionAck,
    /// Parts being streamed, one confirm at a time.
    Sending,
    /// All parts confirmed.
    Complete,
    /// Gave up (timeout or peer refusal).
    Cancelled,
}

impl OutboundTransfer {
    /// Creates the sender state and computes the part layout.
    pub fn new(
        id: TransferId,
        file: FileMeta,
        to: netsim::node::NodeId,
        num_parts: u32,
        now: SimTime,
    ) -> Self {
        let parts = split_parts(file.size_bytes, num_parts);
        OutboundTransfer {
            id,
            file,
            to,
            parts,
            next_part: 0,
            phase: TransferPhase::AwaitingPetitionAck,
            petition_sent_at: now,
        }
    }

    /// Number of parts in this transfer.
    pub fn num_parts(&self) -> u32 {
        self.parts.len() as u32
    }

    /// The peer confirmed readiness: returns the first part to send
    /// (`index`, `size`), or `None` if the transfer was refused.
    pub fn on_petition_ack(&mut self, accepted: bool) -> Option<(u32, u64)> {
        if self.phase != TransferPhase::AwaitingPetitionAck {
            return None;
        }
        if !accepted {
            self.phase = TransferPhase::Cancelled;
            return None;
        }
        self.phase = TransferPhase::Sending;
        self.next_part = 1;
        Some((0, self.parts[0]))
    }

    /// Whether a confirm for part `index` would advance the window right
    /// now. Record keepers use this to validate a confirm *before* mutating
    /// timing records: a stale or duplicate confirm must not touch them.
    pub fn accepts_confirm(&self, index: u32) -> bool {
        self.phase == TransferPhase::Sending && index + 1 == self.next_part
    }

    /// The peer confirmed part `index`: returns the next part to send, or
    /// `None` when the transfer just completed (or the confirm was stale).
    pub fn on_part_confirm(&mut self, index: u32) -> Option<(u32, u64)> {
        // Stop-and-wait: only the confirm for the most recently sent part
        // advances the window.
        if !self.accepts_confirm(index) {
            return None;
        }
        if (self.next_part as usize) < self.parts.len() {
            let i = self.next_part;
            self.next_part += 1;
            Some((i, self.parts[i as usize]))
        } else {
            self.phase = TransferPhase::Complete;
            None
        }
    }

    /// Marks the transfer cancelled (watchdog timeout etc.).
    pub fn cancel(&mut self) {
        if self.phase != TransferPhase::Complete {
            self.phase = TransferPhase::Cancelled;
        }
    }

    /// True when every part has been confirmed.
    pub fn is_complete(&self) -> bool {
        self.phase == TransferPhase::Complete
    }
}

/// Receiver-side state of one inbound transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct InboundTransfer {
    /// Transfer identity.
    pub id: TransferId,
    /// Expected number of parts.
    pub expected_parts: u32,
    /// Parts received so far (distinct indices).
    pub received: u32,
    /// Bytes received so far (duplicates excluded).
    pub bytes: u64,
    /// When the petition was handled.
    pub petition_handled_at: SimTime,
}

/// What a received part meant to the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartReceipt {
    /// A fresh part; more are expected.
    New,
    /// A fresh part, and it was the last one.
    Last,
    /// A retransmission of an already-received part (re-confirm it; the
    /// sender's confirm may have been lost).
    Duplicate,
    /// An index beyond the next expected one: impossible under faithful
    /// stop-and-wait, so the part is rejected — counting it would drift
    /// `received`/`bytes` past reality. Do not confirm it.
    Gap,
}

impl InboundTransfer {
    /// Creates receiver state when the petition is accepted.
    pub fn new(id: TransferId, expected_parts: u32, now: SimTime) -> Self {
        InboundTransfer {
            id,
            expected_parts,
            received: 0,
            bytes: 0,
            petition_handled_at: now,
        }
    }

    /// Records part `index`; stop-and-wait means parts arrive in order, so
    /// any index below the next expected one is a retransmission and any
    /// index above it is a gap (rejected without touching the tallies).
    pub fn on_part(&mut self, index: u32, size: u64) -> PartReceipt {
        if index < self.received {
            return PartReceipt::Duplicate;
        }
        if index > self.received {
            return PartReceipt::Gap;
        }
        self.received += 1;
        self.bytes += size;
        if self.received >= self.expected_parts {
            PartReceipt::Last
        } else {
            PartReceipt::New
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::IdGenerator;
    use netsim::node::NodeId;

    fn meta(size: u64) -> FileMeta {
        let mut g = IdGenerator::new(1);
        FileMeta {
            content: ContentId::generate(&mut g),
            name: "payload.bin".into(),
            size_bytes: size,
        }
    }

    #[test]
    fn split_parts_even_and_remainder() {
        assert_eq!(split_parts(100, 4), vec![25, 25, 25, 25]);
        assert_eq!(split_parts(103, 4), vec![25, 25, 25, 28]);
        assert_eq!(split_parts(100, 1), vec![100]);
        assert_eq!(split_parts(100, 0), vec![100]);
    }

    #[test]
    fn split_parts_conserves_bytes() {
        for size in [1u64, 7, 100, 1 << 20, (100 << 20) + 13] {
            for n in [1u32, 2, 4, 16, 33] {
                let parts = split_parts(size, n);
                assert_eq!(parts.iter().sum::<u64>(), size, "size={size} n={n}");
                assert!(parts.iter().all(|&p| p > 0));
            }
        }
    }

    #[test]
    fn split_parts_degenerate_cases() {
        assert_eq!(split_parts(0, 4), vec![0]);
        // More parts than bytes: empty parts dropped.
        let parts = split_parts(3, 16);
        assert_eq!(parts.iter().sum::<u64>(), 3);
        assert!(parts.len() <= 3);
    }

    #[test]
    fn split_parts_size_smaller_than_num_parts() {
        // base = 0, remainder = size: everything lands in the last slot,
        // empty slots are dropped, so the result is a single full part.
        assert_eq!(split_parts(3, 16), vec![3]);
        assert_eq!(split_parts(1, 2), vec![1]);
        // Exactly one byte per part at the boundary.
        assert_eq!(split_parts(4, 4), vec![1, 1, 1, 1]);
    }

    #[test]
    fn split_parts_zero_parts_requested() {
        // num_parts = 0 is clamped to one part, for any size.
        assert_eq!(split_parts(0, 0), vec![0]);
        assert_eq!(split_parts(7, 0), vec![7]);
        assert_eq!(split_parts(u64::MAX, 0), vec![u64::MAX]);
    }

    #[test]
    fn split_parts_remainder_absorbed_by_last_part() {
        // All non-final parts stay at the base size; only the last grows.
        let parts = split_parts(1009, 10);
        assert_eq!(parts.len(), 10);
        assert!(parts[..9].iter().all(|&p| p == 100));
        assert_eq!(*parts.last().unwrap(), 109);
        assert_eq!(parts.iter().sum::<u64>(), 1009);
    }

    fn outbound(size: u64, n: u32) -> OutboundTransfer {
        let mut g = IdGenerator::new(2);
        OutboundTransfer::new(
            TransferId::generate(&mut g),
            meta(size),
            NodeId(3),
            n,
            SimTime::ZERO,
        )
    }

    #[test]
    fn stop_and_wait_walks_all_parts() {
        let mut t = outbound(100, 4);
        assert_eq!(t.phase, TransferPhase::AwaitingPetitionAck);
        let first = t.on_petition_ack(true).unwrap();
        assert_eq!(first, (0, 25));
        assert_eq!(t.on_part_confirm(0), Some((1, 25)));
        assert_eq!(t.on_part_confirm(1), Some((2, 25)));
        assert_eq!(t.on_part_confirm(2), Some((3, 25)));
        assert_eq!(t.on_part_confirm(3), None);
        assert!(t.is_complete());
    }

    #[test]
    fn refused_petition_cancels() {
        let mut t = outbound(100, 4);
        assert_eq!(t.on_petition_ack(false), None);
        assert_eq!(t.phase, TransferPhase::Cancelled);
        // Further confirms are ignored.
        assert_eq!(t.on_part_confirm(0), None);
    }

    #[test]
    fn stale_and_duplicate_confirms_ignored() {
        let mut t = outbound(100, 4);
        t.on_petition_ack(true);
        assert_eq!(t.on_part_confirm(2), None, "out-of-order confirm");
        let next = t.on_part_confirm(0).unwrap();
        assert_eq!(next.0, 1);
        assert_eq!(t.on_part_confirm(0), None, "duplicate confirm");
    }

    #[test]
    fn double_petition_ack_ignored() {
        let mut t = outbound(100, 2);
        assert!(t.on_petition_ack(true).is_some());
        assert_eq!(t.on_petition_ack(true), None);
    }

    #[test]
    fn cancel_is_sticky_but_not_after_completion() {
        let mut t = outbound(10, 1);
        t.on_petition_ack(true);
        assert_eq!(t.on_part_confirm(0), None);
        assert!(t.is_complete());
        t.cancel();
        assert!(t.is_complete(), "completed transfers stay completed");
        let mut u = outbound(10, 2);
        u.cancel();
        assert_eq!(u.phase, TransferPhase::Cancelled);
    }

    #[test]
    fn inbound_counts_parts_and_dedupes() {
        let mut g = IdGenerator::new(3);
        let mut r = InboundTransfer::new(TransferId::generate(&mut g), 3, SimTime::ZERO);
        assert_eq!(r.on_part(0, 10), PartReceipt::New);
        // Retransmission of part 0: acknowledged but not double-counted.
        assert_eq!(r.on_part(0, 10), PartReceipt::Duplicate);
        assert_eq!(r.on_part(1, 10), PartReceipt::New);
        assert_eq!(r.on_part(2, 12), PartReceipt::Last);
        assert_eq!(r.bytes, 32);
        assert_eq!(r.received, 3);
    }

    #[test]
    fn inbound_rejects_index_gaps() {
        let mut g = IdGenerator::new(4);
        let mut r = InboundTransfer::new(TransferId::generate(&mut g), 4, SimTime::ZERO);
        assert_eq!(r.on_part(0, 10), PartReceipt::New);
        // Index 2 while expecting 1: a gap must not advance the tallies.
        assert_eq!(r.on_part(2, 10), PartReceipt::Gap);
        assert_eq!(r.received, 1);
        assert_eq!(r.bytes, 10);
        // The expected part still goes through normally afterwards.
        assert_eq!(r.on_part(1, 10), PartReceipt::New);
        assert_eq!(r.on_part(2, 10), PartReceipt::New);
        assert_eq!(r.on_part(3, 12), PartReceipt::Last);
        assert_eq!(r.received, 4);
        assert_eq!(r.bytes, 42);
    }

    #[test]
    fn inbound_duplicate_of_last_part_stays_duplicate() {
        let mut g = IdGenerator::new(5);
        let mut r = InboundTransfer::new(TransferId::generate(&mut g), 2, SimTime::ZERO);
        assert_eq!(r.on_part(0, 10), PartReceipt::New);
        assert_eq!(r.on_part(1, 10), PartReceipt::Last);
        // A retransmitted final part must read as a duplicate, not as a
        // fresh (or gap) part, and must leave the tallies untouched.
        assert_eq!(r.on_part(1, 10), PartReceipt::Duplicate);
        assert_eq!(r.received, 2);
        assert_eq!(r.bytes, 20);
    }

    #[test]
    fn accepts_confirm_matches_window() {
        let mut t = outbound(100, 4);
        assert!(!t.accepts_confirm(0), "not accepting before petition ack");
        t.on_petition_ack(true);
        assert!(t.accepts_confirm(0));
        assert!(!t.accepts_confirm(1), "future confirm rejected");
        t.on_part_confirm(0);
        assert!(!t.accepts_confirm(0), "duplicate confirm rejected");
        assert!(t.accepts_confirm(1));
    }

    #[test]
    fn whole_file_is_single_part() {
        let t = outbound(100 << 20, 1);
        assert_eq!(t.num_parts(), 1);
        assert_eq!(t.parts[0], 100 << 20);
    }
}
