//! Peergroup management.
//!
//! JXTA organizes peers into *peer groups*; JXTA-Overlay keeps one default
//! group per broker plus optional application groups. Brokers are group
//! governors: they admit members, track membership, and answer roster
//! queries scoped to a group.

use std::collections::BTreeSet;

use crate::id::{GroupId, IdGenerator, PeerId};

/// One peergroup.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerGroup {
    /// Group identity.
    pub id: GroupId,
    /// Group name.
    pub name: String,
    /// Members, ordered for deterministic iteration.
    members: BTreeSet<PeerId>,
}

impl PeerGroup {
    /// Creates an empty group.
    pub fn new(id: GroupId, name: impl Into<String>) -> Self {
        PeerGroup {
            id,
            name: name.into(),
            members: BTreeSet::new(),
        }
    }

    /// Admits a peer; returns false if it was already a member.
    pub fn join(&mut self, peer: PeerId) -> bool {
        self.members.insert(peer)
    }

    /// Removes a peer; returns false if it was not a member.
    pub fn leave(&mut self, peer: PeerId) -> bool {
        self.members.remove(&peer)
    }

    /// Membership test.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.members.contains(&peer)
    }

    /// Current size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Members in deterministic order.
    pub fn members(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.members.iter().copied()
    }
}

/// The broker's group registry: one default group plus named groups.
#[derive(Debug)]
pub struct GroupRegistry {
    default: PeerGroup,
    groups: Vec<PeerGroup>,
    ids: IdGenerator,
}

impl GroupRegistry {
    /// Creates a registry with the default ("NetPeerGroup") group.
    pub fn new(seed: u64) -> Self {
        let mut ids = IdGenerator::new(seed);
        let default = PeerGroup::new(GroupId::generate(&mut ids), "NetPeerGroup");
        GroupRegistry {
            default,
            groups: Vec::new(),
            ids,
        }
    }

    /// The default group every joining peer is placed in.
    pub fn default_group(&self) -> &PeerGroup {
        &self.default
    }

    /// Admits a peer to the default group.
    pub fn admit(&mut self, peer: PeerId) -> GroupId {
        self.default.join(peer);
        self.default.id
    }

    /// Removes a peer from every group.
    pub fn expel(&mut self, peer: PeerId) {
        self.default.leave(peer);
        for g in &mut self.groups {
            g.leave(peer);
        }
    }

    /// Creates a named application group and returns its id.
    pub fn create_group(&mut self, name: impl Into<String>) -> GroupId {
        let id = GroupId::generate(&mut self.ids);
        self.groups.push(PeerGroup::new(id, name));
        id
    }

    /// Looks up a group (the default group included).
    pub fn group(&self, id: GroupId) -> Option<&PeerGroup> {
        if self.default.id == id {
            return Some(&self.default);
        }
        self.groups.iter().find(|g| g.id == id)
    }

    /// Mutable lookup.
    pub fn group_mut(&mut self, id: GroupId) -> Option<&mut PeerGroup> {
        if self.default.id == id {
            return Some(&mut self.default);
        }
        self.groups.iter_mut().find(|g| g.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(seed: u64) -> PeerId {
        let mut g = IdGenerator::new(seed);
        PeerId::generate(&mut g)
    }

    #[test]
    fn join_and_leave() {
        let mut reg = GroupRegistry::new(1);
        let p = peer(10);
        let gid = reg.admit(p);
        assert_eq!(gid, reg.default_group().id);
        assert!(reg.default_group().contains(p));
        assert_eq!(reg.default_group().len(), 1);
        reg.expel(p);
        assert!(reg.default_group().is_empty());
    }

    #[test]
    fn duplicate_join_is_idempotent() {
        let mut g = PeerGroup::new(GroupId(1), "g");
        let p = peer(11);
        assert!(g.join(p));
        assert!(!g.join(p));
        assert_eq!(g.len(), 1);
        assert!(g.leave(p));
        assert!(!g.leave(p));
    }

    #[test]
    fn named_groups_are_separate() {
        let mut reg = GroupRegistry::new(2);
        let app = reg.create_group("virtual-campus");
        let p = peer(12);
        reg.admit(p);
        reg.group_mut(app).unwrap().join(p);
        assert!(reg.group(app).unwrap().contains(p));
        assert_ne!(app, reg.default_group().id);
        reg.expel(p);
        assert!(!reg.group(app).unwrap().contains(p));
    }

    #[test]
    fn members_iterate_deterministically() {
        let mut g = PeerGroup::new(GroupId(1), "g");
        let peers: Vec<PeerId> = (0..10).map(|i| peer(100 + i)).collect();
        for &p in &peers {
            g.join(p);
        }
        let order1: Vec<PeerId> = g.members().collect();
        let order2: Vec<PeerId> = g.members().collect();
        assert_eq!(order1, order2);
        assert_eq!(order1.len(), 10);
    }

    #[test]
    fn unknown_group_lookup_fails() {
        let reg = GroupRegistry::new(3);
        assert!(reg.group(GroupId(0xdead)).is_none());
    }
}
