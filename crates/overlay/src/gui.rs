//! The GUI client ("Client with GUI" in the paper's §3).
//!
//! JXTA-Overlay distinguishes edge peers *with* a GUI from SimpleClients
//! without one. Functionally a GUI client is a SimpleClient plus a human in
//! front of it: it browses the roster, chats with other peers, requests
//! files it hears about, and occasionally submits jobs. We model the human
//! as a stochastic session: think-time-separated actions drawn from the
//! peer's own RNG stream, so GUI clients generate realistic background
//! chatter for experiments without any scripting.

use netsim::engine::{Actor, Context, TimerId};
use netsim::node::NodeId;
use netsim::time::SimDuration;

use crate::client::{ClientConfig, SimpleClient};
use crate::message::OverlayMsg;

/// What the simulated user does, with relative likelihoods.
#[derive(Debug, Clone, PartialEq)]
pub struct UserBehavior {
    /// Mean think time between actions, seconds.
    pub mean_think_secs: f64,
    /// Relative weight: refresh the peer roster.
    pub browse_weight: f64,
    /// Relative weight: send an instant message to a known peer.
    pub chat_weight: f64,
    /// Relative weight: request one of the named files.
    pub request_weight: f64,
    /// Relative weight: submit a small job.
    pub job_weight: f64,
    /// Files the user knows about and may request.
    pub known_files: Vec<String>,
    /// Work of a user-submitted job, giga-ops.
    pub job_work_gops: f64,
    /// Stop acting after this many actions (None = forever).
    pub max_actions: Option<u32>,
}

impl Default for UserBehavior {
    fn default() -> Self {
        UserBehavior {
            mean_think_secs: 45.0,
            browse_weight: 2.0,
            chat_weight: 3.0,
            request_weight: 1.0,
            job_weight: 0.5,
            known_files: Vec::new(),
            job_work_gops: 20.0,
            max_actions: None,
        }
    }
}

const USER_TIMER_TAG: u64 = 900;

/// A GUI client: a SimpleClient plus a simulated interactive user.
pub struct GuiClient {
    inner: SimpleClient,
    behavior: UserBehavior,
    broker: NodeId,
    /// Roster of peer hosts learnt from discovery.
    known_peers: Vec<NodeId>,
    /// Content names learnt from browsing (merged with the static list).
    discovered_files: Vec<String>,
    actions_taken: u32,
    job_counter: u32,
    /// Exposed for tests: actions by kind (browse, chat, request, job).
    pub action_counts: [u32; 4],
}

impl GuiClient {
    /// Creates a GUI client over the given base config and behaviour.
    pub fn new(cfg: ClientConfig, behavior: UserBehavior, id_seed: u64) -> Self {
        let broker = cfg.broker;
        GuiClient {
            inner: SimpleClient::new(cfg, id_seed),
            behavior,
            broker,
            known_peers: Vec::new(),
            discovered_files: Vec::new(),
            actions_taken: 0,
            job_counter: 0,
            action_counts: [0; 4],
        }
    }

    /// The wrapped SimpleClient.
    pub fn inner(&self) -> &SimpleClient {
        &self.inner
    }

    fn schedule_next_action(&self, ctx: &mut Context<OverlayMsg>) {
        let think = ctx.rng().exponential(self.behavior.mean_think_secs);
        ctx.schedule_timer(SimDuration::from_secs_f64(think.max(1.0)), USER_TIMER_TAG);
    }

    fn act(&mut self, ctx: &mut Context<OverlayMsg>) {
        let b = &self.behavior;
        let total = b.browse_weight + b.chat_weight + b.request_weight + b.job_weight;
        if total <= 0.0 {
            return;
        }
        let roll = ctx.rng().uniform_range(0.0, total);
        if roll < b.browse_weight {
            self.action_counts[0] += 1;
            // Alternate between browsing peers and browsing content.
            if self.actions_taken.is_multiple_of(2) {
                ctx.send(self.broker, OverlayMsg::DiscoverPeers);
            } else {
                ctx.send(
                    self.broker,
                    OverlayMsg::DiscoverContent {
                        pattern: String::new(),
                    },
                );
            }
        } else if roll < b.browse_weight + b.chat_weight {
            self.action_counts[1] += 1;
            let peers = self.known_peers.clone();
            if let Some(&peer) = ctx.rng().choose(&peers) {
                if peer != ctx.self_id() {
                    ctx.send(
                        peer,
                        OverlayMsg::Instant {
                            text: "hey, how's the campus render going?".into(),
                        },
                    );
                }
            }
        } else if roll < b.browse_weight + b.chat_weight + b.request_weight {
            self.action_counts[2] += 1;
            let mut files = self.behavior.known_files.clone();
            files.extend(self.discovered_files.iter().cloned());
            if let Some(name) = ctx.rng().choose(&files) {
                let requester = self.inner.peer_id();
                ctx.send(
                    self.broker,
                    OverlayMsg::FileRequest {
                        requester,
                        name: name.clone(),
                    },
                );
            }
        } else {
            self.action_counts[3] += 1;
            self.job_counter += 1;
            let submitter = self.inner.peer_id();
            let label = format!("gui-job-{}", self.job_counter);
            ctx.send(
                self.broker,
                OverlayMsg::JobSubmit {
                    submitter,
                    work_gops: self.behavior.job_work_gops,
                    input_bytes: 0,
                    input_parts: 1,
                    label,
                },
            );
        }
    }
}

impl Actor<OverlayMsg> for GuiClient {
    fn on_start(&mut self, ctx: &mut Context<OverlayMsg>) {
        self.inner.on_start(ctx);
        self.schedule_next_action(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<OverlayMsg>, from: NodeId, msg: OverlayMsg) {
        match &msg {
            OverlayMsg::DiscoverPeersResponse { adverts } => {
                self.known_peers = adverts.iter().map(|a| a.node).collect();
            }
            OverlayMsg::DiscoverContentResponse { adverts } => {
                for a in adverts {
                    if !self.discovered_files.contains(&a.name) {
                        self.discovered_files.push(a.name.clone());
                    }
                }
            }
            _ => {}
        }
        self.inner.on_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Context<OverlayMsg>, timer: TimerId, tag: u64) {
        if tag == USER_TIMER_TAG {
            let exhausted = self
                .behavior
                .max_actions
                .is_some_and(|m| self.actions_taken >= m);
            if !exhausted {
                self.actions_taken += 1;
                self.act(ctx);
                self.schedule_next_action(ctx);
            }
            return;
        }
        self.inner.on_timer(ctx, timer, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::{Broker, BrokerConfig};
    use crate::records::RecordSink;
    use netsim::link::{AccessLink, PathSpec};
    use netsim::node::NodeSpec;
    use netsim::prelude::*;

    fn run_session(behavior: UserBehavior, horizon_secs: f64) -> (Metrics, RecordSink) {
        let mut topo = Topology::new();
        let broker = topo.add_node(
            NodeSpec::responsive("broker"),
            AccessLink::symmetric_mbps(80.0, 0.0001),
        );
        let gui = topo.add_node(
            NodeSpec::responsive("gui-client"),
            AccessLink::symmetric_mbps(8.0, 0.0003),
        );
        let other = topo.add_node(
            NodeSpec::responsive("other"),
            AccessLink::symmetric_mbps(8.0, 0.0003),
        );
        topo.set_path_symmetric(broker, gui, PathSpec::from_owd_ms(20.0, 0.0));
        topo.set_path_symmetric(broker, other, PathSpec::from_owd_ms(20.0, 0.0));
        topo.set_path_symmetric(gui, other, PathSpec::from_owd_ms(25.0, 0.0));
        let sink = RecordSink::new();
        let mut bcfg = BrokerConfig::new(61);
        bcfg.stop_when_idle = false;
        let mut engine = Engine::new(topo, TransportConfig::default(), 99);
        engine.register(broker, Box::new(Broker::new(bcfg, sink.clone())));
        engine.register(
            gui,
            Box::new(GuiClient::new(ClientConfig::new(broker), behavior, 7)),
        );
        engine.register(
            other,
            Box::new(
                SimpleClient::new(ClientConfig::new(broker).sharing("notes.pdf", 1 << 20), 8)
                    .with_sink(sink.clone()),
            ),
        );
        engine.run_until(SimTime::from_secs_f64(horizon_secs));
        (engine.metrics().clone(), sink)
    }

    #[test]
    fn user_generates_traffic() {
        let behavior = UserBehavior {
            mean_think_secs: 20.0,
            known_files: vec!["notes.pdf".into()],
            ..UserBehavior::default()
        };
        let (metrics, _sink) = run_session(behavior, 3600.0);
        // The user did *something* beyond protocol plumbing.
        assert!(metrics.counter("net.messages_sent") > 50);
    }

    #[test]
    fn user_requests_known_files_and_they_arrive() {
        let behavior = UserBehavior {
            mean_think_secs: 10.0,
            browse_weight: 0.0,
            chat_weight: 0.0,
            job_weight: 0.0,
            request_weight: 1.0,
            known_files: vec!["notes.pdf".into()],
            max_actions: Some(3),
            ..UserBehavior::default()
        };
        let (metrics, sink) = run_session(behavior, 3600.0);
        assert_eq!(metrics.counter("overlay.file_requests_served"), 3);
        let log = sink.drain();
        let served = log
            .transfers
            .iter()
            .filter(|t| t.label == "notes.pdf" && t.completed_at.is_some())
            .count();
        assert_eq!(served, 3);
    }

    #[test]
    fn user_submits_jobs_that_complete() {
        let behavior = UserBehavior {
            mean_think_secs: 10.0,
            browse_weight: 0.0,
            chat_weight: 0.0,
            request_weight: 0.0,
            job_weight: 1.0,
            max_actions: Some(2),
            ..UserBehavior::default()
        };
        let (_metrics, sink) = run_session(behavior, 3600.0);
        let log = sink.drain();
        assert_eq!(log.jobs.len(), 2);
        assert!(log.jobs.iter().all(|j| j.success));
    }

    #[test]
    fn max_actions_bounds_the_session() {
        let behavior = UserBehavior {
            mean_think_secs: 5.0,
            max_actions: Some(4),
            known_files: vec!["notes.pdf".into()],
            ..UserBehavior::default()
        };
        let mut topo = Topology::new();
        let broker = topo.add_node(NodeSpec::responsive("b"), AccessLink::default());
        let gui = topo.add_node(NodeSpec::responsive("g"), AccessLink::default());
        topo.set_path_symmetric(broker, gui, PathSpec::from_owd_ms(10.0, 0.0));
        let mut bcfg = BrokerConfig::new(62);
        bcfg.stop_when_idle = false;
        let mut engine = Engine::new(topo, TransportConfig::default(), 5);
        engine.register(broker, Box::new(Broker::new(bcfg, RecordSink::new())));
        engine.register(
            gui,
            Box::new(GuiClient::new(ClientConfig::new(broker), behavior, 9)),
        );
        engine.run_until(SimTime::from_secs_f64(4000.0));
        // Only the stats timer keeps firing after the 4 actions; the run
        // reaches the horizon without runaway user activity.
        assert!(engine.now().as_secs_f64() >= 4000.0);
    }
}
