//! The shared sender-side transfer state machine.
//!
//! Both the broker (scripted distributions, task-input shipments) and the
//! client (broker-instructed peer-to-peer serves) drive the same
//! petition → ack → stop-and-wait protocol from the sending end, and both
//! must keep an [`OutboundTransfer`] and its [`TransferRecord`] in lock
//! step: only the *first* petition ack carries timing milestones, and only
//! a confirm that advances the stop-and-wait window may stamp
//! `confirmed_at` (first-confirm-wins). [`SenderFlow`] owns that pairing
//! once, so the invariants live in one place instead of being duplicated
//! per actor.
//!
//! The flow is deliberately side-effect-free towards the engine: it never
//! sends messages, schedules timers, or emits trace events. Callers ask it
//! "what just happened?" and perform their own sends/traces around it, so
//! actor-specific behaviour (pipes, retries, reports) stays with the actor
//! while the record bookkeeping cannot drift between them.

use std::collections::HashMap;
use std::sync::Arc;

use netsim::time::SimTime;

use crate::filetransfer::{OutboundTransfer, TransferPhase};
use crate::id::TransferId;
use crate::records::{PartRecord, RecordSink, TransferRecord};

/// Sender-side bookkeeping for all live outbound transfers of one actor:
/// the [`OutboundTransfer`] window state plus the shared [`TransferRecord`]
/// mutations that must stay consistent with it.
#[derive(Debug, Default)]
pub struct SenderFlow {
    live: HashMap<TransferId, OutboundTransfer>,
    sink: Option<RecordSink>,
}

impl SenderFlow {
    /// An empty flow with no record sink attached (record mutations become
    /// no-ops until [`SenderFlow::set_sink`] is called).
    pub fn new() -> Self {
        SenderFlow::default()
    }

    /// Attaches the shared run log the flow writes records into.
    pub fn set_sink(&mut self, sink: RecordSink) {
        self.sink = Some(sink);
    }

    /// Number of live (unfinished) outbound transfers.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no outbound transfer is live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Read access to a live transfer's window state.
    pub fn get(&self, transfer: TransferId) -> Option<&OutboundTransfer> {
        self.live.get(&transfer)
    }

    /// Registers a freshly petitioned transfer: inserts the window state
    /// and appends its [`TransferRecord`] (petition sent `now`).
    pub fn begin(&mut self, outbound: OutboundTransfer, to_name: Arc<str>, now: SimTime) {
        if let Some(sink) = &self.sink {
            let rec = TransferRecord {
                id: outbound.id,
                to: outbound.to,
                to_name,
                label: outbound.file.name.clone(),
                file_size: outbound.file.size_bytes,
                num_parts: outbound.num_parts(),
                petition_sent_at: now,
                petition_handled_at: None,
                petition_acked_at: None,
                parts: Vec::with_capacity(outbound.num_parts() as usize),
                completed_at: None,
                cancelled: false,
                receiver_bytes: None,
            };
            sink.with(|log| log.transfers.push(rec));
        }
        self.live.insert(outbound.id, outbound);
    }

    /// Whether the transfer is still awaiting its petition ack — i.e. the
    /// ack now being handled is the *first* one and may stamp milestones.
    /// A duplicate ack (retransmitted petition) must not skew the records
    /// or the latency history.
    pub fn is_awaiting_ack(&self, transfer: TransferId) -> bool {
        self.live
            .get(&transfer)
            .map(|t| t.phase == TransferPhase::AwaitingPetitionAck)
            .unwrap_or(false)
    }

    /// Stamps the first petition ack's timing milestones on the record.
    pub fn note_ack_times(&self, transfer: TransferId, handled_at: SimTime, acked_at: SimTime) {
        if let Some(sink) = &self.sink {
            sink.with(|log| {
                if let Some(rec) = log.transfer_mut(transfer) {
                    rec.petition_handled_at = Some(handled_at);
                    rec.petition_acked_at = Some(acked_at);
                }
            });
        }
    }

    /// Advances the window on a petition ack: returns the first part to
    /// send, or `None` (refused, stale, or unknown transfer).
    pub fn on_ack(&mut self, transfer: TransferId, accepted: bool) -> Option<(u32, u64)> {
        self.live
            .get_mut(&transfer)
            .and_then(|t| t.on_petition_ack(accepted))
    }

    /// Whether a confirm for `index` would advance the stop-and-wait window
    /// right now. Callers must check this *before* touching the record: a
    /// late duplicate confirm must not overwrite the original milestone.
    pub fn accepts_confirm(&self, transfer: TransferId, index: u32) -> bool {
        self.live
            .get(&transfer)
            .map(|t| t.accepts_confirm(index))
            .unwrap_or(false)
    }

    /// Stamps a validated confirm's arrival on the part record
    /// (first-confirm-wins: an already-stamped part is left untouched).
    pub fn note_confirm(&self, transfer: TransferId, index: u32, now: SimTime) {
        if let Some(sink) = &self.sink {
            sink.with(|log| {
                if let Some(rec) = log.transfer_mut(transfer) {
                    if let Some(part) = rec.parts.iter_mut().find(|p| p.index == index) {
                        if part.confirmed_at.is_none() {
                            part.confirmed_at = Some(now);
                        }
                    }
                }
            });
        }
    }

    /// Advances the window on a part confirm. `None` for unknown transfers;
    /// otherwise `(next part to send, window now complete)`.
    #[allow(clippy::type_complexity)]
    pub fn on_confirm(
        &mut self,
        transfer: TransferId,
        index: u32,
    ) -> Option<(Option<(u32, u64)>, bool)> {
        self.live
            .get_mut(&transfer)
            .map(|t| (t.on_part_confirm(index), t.is_complete()))
    }

    /// Appends the part-sent milestone to the record.
    pub fn note_part_sent(&self, transfer: TransferId, index: u32, size: u64, now: SimTime) {
        if let Some(sink) = &self.sink {
            sink.with(|log| {
                if let Some(rec) = log.transfer_mut(transfer) {
                    rec.parts.push(PartRecord {
                        index,
                        size,
                        sent_at: now,
                        confirmed_at: None,
                    });
                }
            });
        }
    }

    /// Marks a live transfer cancelled (watchdog / retries exhausted).
    pub fn cancel(&mut self, transfer: TransferId) {
        if let Some(t) = self.live.get_mut(&transfer) {
            t.cancel();
        }
    }

    /// Removes a transfer from the live set, returning its final window
    /// state (`None` when already finished — callers treat that as a stale
    /// signal and do nothing).
    pub fn finish(&mut self, transfer: TransferId) -> Option<OutboundTransfer> {
        self.live.remove(&transfer)
    }

    /// Stamps the record's terminal state (`completed_at` or `cancelled`)
    /// and returns `(elapsed seconds since the petition, throughput)` as
    /// derived from the record — `(0.0, None)` when no record exists.
    pub fn stamp_finished(
        &self,
        transfer: TransferId,
        now: SimTime,
        completed: bool,
    ) -> (f64, Option<f64>) {
        let mut elapsed = 0.0;
        let mut throughput = None;
        if let Some(sink) = &self.sink {
            sink.with(|log| {
                if let Some(rec) = log.transfer_mut(transfer) {
                    if completed {
                        rec.completed_at = Some(now);
                    } else {
                        rec.cancelled = true;
                    }
                    elapsed = now.duration_since(rec.petition_sent_at).as_secs_f64();
                    throughput = rec.throughput_bytes_per_sec();
                }
            });
        }
        (elapsed, throughput)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filetransfer::FileMeta;
    use crate::id::{ContentId, IdGenerator};
    use netsim::node::NodeId;
    use netsim::time::SimDuration;

    fn t(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    fn flow_with_transfer(parts: u32) -> (SenderFlow, RecordSink, TransferId) {
        let mut ids = IdGenerator::new(3);
        let id = TransferId::generate(&mut ids);
        let file = FileMeta {
            content: ContentId::generate(&mut ids),
            name: "f".to_string(),
            size_bytes: 4 << 20,
        };
        let outbound = OutboundTransfer::new(id, file, NodeId(2), parts, t(0.0));
        let sink = RecordSink::new();
        let mut flow = SenderFlow::new();
        flow.set_sink(sink.clone());
        flow.begin(outbound, Arc::from("peer2"), t(0.0));
        (flow, sink, id)
    }

    #[test]
    fn begin_records_and_tracks_live_state() {
        let (flow, sink, id) = flow_with_transfer(4);
        assert_eq!(flow.len(), 1);
        assert!(flow.is_awaiting_ack(id));
        sink.with(|log| {
            let rec = log.transfer(id).expect("record created");
            assert_eq!(rec.num_parts, 4);
            assert_eq!(&*rec.to_name, "peer2");
            assert!(rec.parts.is_empty());
        });
    }

    #[test]
    fn only_first_ack_is_flagged() {
        let (mut flow, sink, id) = flow_with_transfer(2);
        assert!(flow.is_awaiting_ack(id));
        flow.note_ack_times(id, t(1.0), t(1.1));
        assert_eq!(flow.on_ack(id, true), Some((0, 2 << 20)));
        // A duplicate ack must no longer be "first".
        assert!(!flow.is_awaiting_ack(id));
        assert_eq!(flow.on_ack(id, true), None);
        sink.with(|log| {
            let rec = log.transfer(id).unwrap();
            assert_eq!(rec.petition_handled_at, Some(t(1.0)));
            assert_eq!(rec.petition_acked_at, Some(t(1.1)));
        });
    }

    #[test]
    fn first_confirm_wins_on_the_record() {
        let (mut flow, sink, id) = flow_with_transfer(2);
        flow.on_ack(id, true);
        flow.note_part_sent(id, 0, 2 << 20, t(1.1));
        assert!(flow.accepts_confirm(id, 0));
        flow.note_confirm(id, 0, t(2.0));
        // The stale duplicate must neither validate nor move the stamp.
        flow.note_confirm(id, 0, t(9.0));
        assert_eq!(flow.on_confirm(id, 0), Some((Some((1, 2 << 20)), false)));
        assert!(!flow.accepts_confirm(id, 0), "window advanced past part 0");
        sink.with(|log| {
            let rec = log.transfer(id).unwrap();
            assert_eq!(rec.parts[0].confirmed_at, Some(t(2.0)));
        });
    }

    #[test]
    fn finish_and_stamp_cover_both_outcomes() {
        let (mut flow, sink, id) = flow_with_transfer(1);
        flow.on_ack(id, true);
        flow.note_part_sent(id, 0, 4 << 20, t(1.0));
        flow.note_confirm(id, 0, t(3.0));
        assert_eq!(flow.on_confirm(id, 0), Some((None, true)));
        let (elapsed, throughput) = flow.stamp_finished(id, t(3.0), true);
        assert!((elapsed - 3.0).abs() < 1e-9);
        assert!(throughput.unwrap() > 0.0);
        assert!(flow.finish(id).is_some());
        assert!(flow.finish(id).is_none(), "second finish is stale");
        sink.with(|log| assert!(log.transfer(id).unwrap().completed_at.is_some()));

        let (mut flow, sink, id) = flow_with_transfer(1);
        flow.cancel(id);
        let (elapsed, throughput) = flow.stamp_finished(id, t(5.0), false);
        assert!((elapsed - 5.0).abs() < 1e-9);
        assert_eq!(throughput, None);
        sink.with(|log| assert!(log.transfer(id).unwrap().cancelled));
    }
}
