//! The Broker peer: governor of the P2P network (paper §3).
//!
//! The broker admits clients, aggregates per-peer statistics, coordinates
//! chunked file transfers (petition → ack → stop-and-wait parts), manages
//! executable tasks (ship input → offer → accept → result), and — crucially
//! for this study — consults a pluggable [`PeerSelector`] whenever a command
//! says "send this to the *selected* peer".
//!
//! Experiments drive the broker through a command script: a list of
//! `(delay, command)` pairs executed at the scheduled times.

use std::collections::HashMap;

use netsim::engine::{Actor, Context, TimerId};
use netsim::metrics::{MetricId, Metrics};
use netsim::node::NodeId;
use netsim::time::{SimDuration, SimTime};
use netsim::trace::{SpanKind, TraceEventKind};

use crate::advertisement::PeerAdvertisement;
use crate::filetransfer::{FileMeta, OutboundTransfer};
use crate::group::GroupRegistry;
use crate::id::{ContentId, IdGenerator, PeerId, PipeId, TaskId, TransferId};
use crate::message::OverlayMsg;
use crate::pipe::PipeRegistry;
use crate::records::{
    JobRecord, PartRecord, RecordSink, SelectionRecord, TaskRecord, TransferRecord,
};
use crate::selector::{
    CandidateView, InteractionHistory, PeerSelector, Purpose, SelectionOutcome, SelectionRequest,
};
use crate::stats::PeerStats;
use crate::task::{TaskPhase, TaskSpec, TaskTracking};

const CMD_TAG_BASE: u64 = 1_000_000;
const WATCHDOG_TAG_BASE: u64 = 2_000_000;
const GOSSIP_TAG: u64 = 3_000_000;
const TASK_WATCHDOG_TAG_BASE: u64 = 4_000_000;
const RETRY_TAG_BASE: u64 = 5_000_000;
const CMD_RETRY_DELAY: SimDuration = SimDuration::from_millis(500);
const CMD_MAX_RETRIES: u32 = 240;

/// Retransmission policy for lossy networks: the sender re-sends the
/// petition or the in-flight part when no answer arrives within `timeout`,
/// up to `max_attempts` sends total, then cancels the transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// How long to wait for the ack/confirm before retransmitting.
    pub timeout: SimDuration,
    /// Total send attempts per message (1 = no retries).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: SimDuration::from_secs(120),
            max_attempts: 4,
        }
    }
}

/// Who should receive a piece of work.
#[derive(Debug, Clone, PartialEq)]
pub enum TargetSpec {
    /// A specific host.
    Node(NodeId),
    /// Every registered client (one work item per client).
    AllClients,
    /// Whichever peer the configured [`PeerSelector`] picks.
    Selected,
}

/// One scripted broker action.
#[derive(Debug, Clone, PartialEq)]
pub enum BrokerCommand {
    /// Transfer a synthetic file of `size_bytes`, split into `num_parts`.
    DistributeFile {
        /// Destination(s).
        target: TargetSpec,
        /// File size in bytes.
        size_bytes: u64,
        /// Number of parts (1 = send whole).
        num_parts: u32,
        /// Label recorded with the transfer (figures key on it).
        label: String,
    },
    /// Run a task of `work_gops`, optionally shipping `input_bytes` first.
    SubmitTask {
        /// Executor(s).
        target: TargetSpec,
        /// Compute demand in giga-ops.
        work_gops: f64,
        /// Input to ship before execution (0 = none).
        input_bytes: u64,
        /// Parts for the input shipment.
        input_parts: u32,
        /// Label recorded with the task.
        label: String,
    },
    /// Send an instant message (exercises the messaging primitive).
    SendInstant {
        /// Destination(s).
        target: TargetSpec,
        /// Body.
        text: String,
    },
}

/// Broker construction parameters.
pub struct BrokerConfig {
    /// Scripted actions: `(delay from start, command)`.
    pub commands: Vec<(SimDuration, BrokerCommand)>,
    /// Selection model used for [`TargetSpec::Selected`].
    pub selector: Option<Box<dyn PeerSelector>>,
    /// Watchdog: cancel transfers that exceed this duration.
    pub transfer_timeout: SimDuration,
    /// Watchdog: fail tasks that produce no result within this duration
    /// (measured from the offer).
    pub task_timeout: SimDuration,
    /// EWMA smoothing for observed history.
    pub ewma_alpha: f64,
    /// `k` for the "last k hours" criterion when snapshotting stats.
    pub stats_k_hours: usize,
    /// Seed for id generation.
    pub id_seed: u64,
    /// Stop the whole simulation once all scripted work completes.
    pub stop_when_idle: bool,
    /// Parts used when instructing peer-to-peer transfers for file requests.
    pub request_parts: u32,
    /// Fellow broker hosts to exchange rosters with (broker federation).
    pub peer_brokers: Vec<NodeId>,
    /// Roster-gossip period.
    pub gossip_interval: SimDuration,
    /// Optional retransmission policy (None = rely on watchdogs only;
    /// appropriate when the transport is loss-free, i.e. TCP-like).
    pub retry: Option<RetryPolicy>,
}

impl BrokerConfig {
    /// A broker with no scripted commands.
    pub fn new(id_seed: u64) -> Self {
        BrokerConfig {
            commands: Vec::new(),
            selector: None,
            transfer_timeout: SimDuration::from_mins(90),
            task_timeout: SimDuration::from_mins(120),
            ewma_alpha: 0.3,
            stats_k_hours: 24,
            id_seed,
            stop_when_idle: true,
            request_parts: 16,
            peer_brokers: Vec::new(),
            gossip_interval: SimDuration::from_secs(60),
            retry: None,
        }
    }

    /// Schedules a command `delay` after start.
    pub fn at(mut self, delay: SimDuration, cmd: BrokerCommand) -> Self {
        self.commands.push((delay, cmd));
        self
    }

    /// Installs the selection model.
    pub fn with_selector(mut self, s: Box<dyn PeerSelector>) -> Self {
        self.selector = Some(s);
        self
    }
}

struct PeerEntry {
    adv: PeerAdvertisement,
    stats: PeerStats,
    reported: Option<crate::stats::StatsSnapshot>,
    history: InteractionHistory,
}

/// Pre-resolved handles for the broker's protocol counters, interned once
/// per run (see [`Metrics::counter_id`]) so milestone accounting on busy
/// paths never re-walks the metric name map.
struct BrokerCounters {
    transfers_started: MetricId,
    transfers_completed: MetricId,
    transfers_cancelled: MetricId,
    tasks_submitted: MetricId,
    tasks_completed: MetricId,
    tasks_failed: MetricId,
    tasks_timed_out: MetricId,
    joins: MetricId,
    content_published: MetricId,
    file_requests_served: MetricId,
    file_requests_unserved: MetricId,
    jobs_unplaced: MetricId,
    gossip_received: MetricId,
    retransmissions: MetricId,
    retries_exhausted: MetricId,
}

impl BrokerCounters {
    fn resolve(metrics: &mut Metrics) -> Self {
        BrokerCounters {
            transfers_started: metrics.counter_id("overlay.transfers_started"),
            transfers_completed: metrics.counter_id("overlay.transfers_completed"),
            transfers_cancelled: metrics.counter_id("overlay.transfers_cancelled"),
            tasks_submitted: metrics.counter_id("overlay.tasks_submitted"),
            tasks_completed: metrics.counter_id("overlay.tasks_completed"),
            tasks_failed: metrics.counter_id("overlay.tasks_failed"),
            tasks_timed_out: metrics.counter_id("overlay.tasks_timed_out"),
            joins: metrics.counter_id("overlay.joins"),
            content_published: metrics.counter_id("overlay.content_published"),
            file_requests_served: metrics.counter_id("overlay.file_requests_served"),
            file_requests_unserved: metrics.counter_id("overlay.file_requests_unserved"),
            jobs_unplaced: metrics.counter_id("overlay.jobs_unplaced"),
            gossip_received: metrics.counter_id("overlay.gossip_received"),
            retransmissions: metrics.counter_id("overlay.retransmissions"),
            retries_exhausted: metrics.counter_id("overlay.retries_exhausted"),
        }
    }
}

/// The broker actor.
pub struct Broker {
    cfg: BrokerConfig,
    ids: IdGenerator,
    peers: HashMap<PeerId, PeerEntry>,
    by_node: HashMap<NodeId, PeerId>,
    groups: GroupRegistry,
    outbound: HashMap<TransferId, OutboundTransfer>,
    watchdog_for: HashMap<u64, TransferId>,
    next_watchdog_tag: u64,
    task_watchdog_for: HashMap<u64, TaskId>,
    next_task_watchdog_tag: u64,
    tasks: HashMap<TaskId, TaskTracking>,
    input_transfer_to_task: HashMap<TransferId, TaskId>,
    command_retries: HashMap<u64, u32>,
    /// When each deferred command's timer first fired, so transfers it
    /// eventually starts can attribute the wait as broker queueing.
    command_first_due: HashMap<u64, SimTime>,
    commands_pending: usize,
    /// Published content by name → holders.
    content: HashMap<String, Vec<Holding>>,
    /// Peer-to-peer transfers we instructed and are awaiting reports for.
    instructed_pending: u32,
    /// Client-submitted jobs keyed by the task executing them.
    job_for_task: HashMap<TaskId, JobInfo>,
    /// Candidate views learnt from fellow brokers, keyed by peer.
    remote_peers: HashMap<PeerId, CandidateView>,
    /// Armed retransmission probes by timer tag.
    retry_probes: HashMap<u64, RetryProbe>,
    next_retry_tag: u64,
    /// Open unicast pipes: one data pipe per live outbound transfer.
    pipes: PipeRegistry,
    /// Data pipe backing each live outbound transfer.
    pipe_for: HashMap<TransferId, PipeId>,
    counters: Option<BrokerCounters>,
    sink: RecordSink,
}

#[derive(Debug, Clone, Copy)]
enum RetryKind {
    Petition,
    Part { index: u32, size: u64 },
}

#[derive(Debug, Clone, Copy)]
struct RetryProbe {
    transfer: TransferId,
    kind: RetryKind,
    attempt: u32,
}

#[derive(Debug, Clone)]
struct Holding {
    peer: PeerId,
    node: NodeId,
    content: crate::id::ContentId,
    size: u64,
    adv: crate::advertisement::ContentAdvertisement,
}

#[derive(Debug, Clone)]
struct JobInfo {
    submitter_node: NodeId,
    label: String,
    submitted_at: SimTime,
}

impl Broker {
    /// Bumps the protocol counter picked by `which`, resolving the handle
    /// set on first use.
    fn bump(&mut self, ctx: &mut Context<OverlayMsg>, which: fn(&BrokerCounters) -> MetricId) {
        let ids = self
            .counters
            .get_or_insert_with(|| BrokerCounters::resolve(ctx.metrics()));
        let id = which(ids);
        ctx.metrics().incr_id(id, 1);
    }

    /// Creates a broker writing records into `sink`.
    pub fn new(cfg: BrokerConfig, sink: RecordSink) -> Self {
        let id_seed = cfg.id_seed;
        Broker {
            ids: IdGenerator::new(id_seed),
            groups: GroupRegistry::new(id_seed ^ 0x6120),
            commands_pending: cfg.commands.len(),
            cfg,
            peers: HashMap::new(),
            by_node: HashMap::new(),
            outbound: HashMap::new(),
            watchdog_for: HashMap::new(),
            next_watchdog_tag: WATCHDOG_TAG_BASE,
            task_watchdog_for: HashMap::new(),
            next_task_watchdog_tag: TASK_WATCHDOG_TAG_BASE,
            tasks: HashMap::new(),
            input_transfer_to_task: HashMap::new(),
            command_retries: HashMap::new(),
            command_first_due: HashMap::new(),
            content: HashMap::new(),
            instructed_pending: 0,
            job_for_task: HashMap::new(),
            remote_peers: HashMap::new(),
            retry_probes: HashMap::new(),
            next_retry_tag: RETRY_TAG_BASE,
            pipes: PipeRegistry::new(),
            pipe_for: HashMap::new(),
            counters: None,
            sink: sink.clone(),
        }
    }

    /// Number of currently open data pipes (one per live transfer).
    pub fn open_pipe_count(&self) -> usize {
        self.pipes.len()
    }

    /// Number of registered peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    fn registered_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.by_node.keys().copied().collect();
        nodes.sort(); // deterministic order
        nodes
    }

    fn candidate_views(&self, now: SimTime) -> Vec<CandidateView> {
        let mut views: Vec<CandidateView> = self
            .peers
            .values()
            .map(|entry| {
                // Broker-side stats, with queue gauges overridden by the
                // peer's own latest report when available.
                let mut snapshot = entry.stats.snapshot(now, self.cfg.stats_k_hours);
                if let Some(reported) = &entry.reported {
                    snapshot.inbox_now = reported.inbox_now;
                    snapshot.inbox_avg = reported.inbox_avg;
                    snapshot.outbox_now = reported.outbox_now;
                    snapshot.outbox_avg = reported.outbox_avg;
                }
                CandidateView {
                    peer: entry.adv.peer,
                    node: entry.adv.node,
                    name: entry.adv.name.clone(),
                    cpu_gops: entry.adv.cpu_gops,
                    snapshot,
                    history: entry.history.clone(),
                }
            })
            .collect();
        // Merge federation-learnt peers that are not locally registered.
        for remote in self.remote_peers.values() {
            if !self.by_node.contains_key(&remote.node) {
                views.push(remote.clone());
            }
        }
        views.sort_by_key(|v| v.node);
        views
    }

    fn resolve_targets(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        target: &TargetSpec,
        purpose: Purpose,
    ) -> Vec<NodeId> {
        match target {
            TargetSpec::Node(n) => vec![*n],
            TargetSpec::AllClients => self.registered_nodes(),
            TargetSpec::Selected => {
                let now = ctx.now();
                let candidates = self.candidate_views(now);
                if candidates.is_empty() {
                    return Vec::new();
                }
                let Some(selector) = self.cfg.selector.as_mut() else {
                    return Vec::new();
                };
                let req = SelectionRequest {
                    now,
                    purpose,
                    candidates: &candidates,
                };
                match selector.select(&req) {
                    Some(i) if i < candidates.len() => {
                        let chosen = &candidates[i];
                        self.sink.with(|log| {
                            log.selections.push(SelectionRecord {
                                at: now,
                                model: selector.name().to_string(),
                                chosen: chosen.node,
                                chosen_name: chosen.name.clone(),
                                candidates: candidates.len(),
                            })
                        });
                        if ctx.trace_enabled() {
                            trace_selection(ctx, &mut **selector, &req, chosen.node);
                        }
                        vec![chosen.node]
                    }
                    _ => Vec::new(),
                }
            }
        }
    }

    /// Selection restricted to `nodes` (used for file requests with several
    /// owners). Falls back to least-pending-transfers when no selector is
    /// installed. Records the decision when a selector was consulted.
    fn select_among(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        nodes: &[NodeId],
        purpose: Purpose,
    ) -> Option<NodeId> {
        let now = ctx.now();
        if nodes.is_empty() {
            return None;
        }
        if nodes.len() == 1 {
            return Some(nodes[0]);
        }
        let candidates: Vec<CandidateView> = self
            .candidate_views(now)
            .into_iter()
            .filter(|v| nodes.contains(&v.node))
            .collect();
        if let Some(selector) = self.cfg.selector.as_mut() {
            if !candidates.is_empty() {
                let req = SelectionRequest {
                    now,
                    purpose,
                    candidates: &candidates,
                };
                if let Some(i) = selector.select(&req) {
                    if i < candidates.len() {
                        let chosen = &candidates[i];
                        let record = SelectionRecord {
                            at: now,
                            model: selector.name().to_string(),
                            chosen: chosen.node,
                            chosen_name: chosen.name.clone(),
                            candidates: candidates.len(),
                        };
                        self.sink.with(|log| log.selections.push(record));
                        if ctx.trace_enabled() {
                            trace_selection(ctx, &mut **selector, &req, chosen.node);
                        }
                        return Some(chosen.node);
                    }
                }
            }
        }
        // Fallback: least currently-pending transfers, lowest node id.
        candidates
            .iter()
            .min_by(|a, b| {
                a.snapshot
                    .pending_transfers
                    .partial_cmp(&b.snapshot.pending_transfers)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.node.cmp(&b.node))
            })
            .map(|v| v.node)
            .or_else(|| nodes.first().copied())
    }

    fn start_transfer(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        to: NodeId,
        size_bytes: u64,
        num_parts: u32,
        label: &str,
        enqueued_at: SimTime,
    ) -> TransferId {
        let now = ctx.now();
        let id = TransferId::generate(&mut self.ids);
        let file = FileMeta {
            content: ContentId::generate(&mut self.ids),
            name: label.to_string(),
            size_bytes,
        };
        let outbound = OutboundTransfer::new(id, file.clone(), to, num_parts, now);
        let actual_parts = outbound.num_parts();
        self.sink.with(|log| {
            log.transfers.push(TransferRecord {
                id,
                to,
                to_name: ctx_name(ctx, to),
                label: label.to_string(),
                file_size: size_bytes,
                num_parts: actual_parts,
                petition_sent_at: now,
                petition_handled_at: None,
                petition_acked_at: None,
                parts: Vec::with_capacity(actual_parts as usize),
                completed_at: None,
                cancelled: false,
                receiver_bytes: None,
            })
        });
        if let Some(peer) = self.by_node.get(&to).copied() {
            if let Some(entry) = self.peers.get_mut(&peer) {
                entry.stats.pending_transfers += 1;
                entry.stats.outbox.incr(now);
                entry.history.queued_bytes += size_bytes;
            }
            // Open the transfer's data pipe (the JXTA unicast channel the
            // parts notionally flow through); closed in finish_transfer.
            let pipe = self.pipes.open(
                &mut self.ids,
                peer,
                to,
                label,
                now,
                self.cfg.transfer_timeout,
            );
            self.pipe_for.insert(id, pipe);
            if ctx.trace_enabled() {
                ctx.trace_event(TraceEventKind::PipeOpened {
                    pipe: pipe.raw(),
                    node: to,
                });
            }
        }
        if ctx.trace_enabled() {
            ctx.trace_event(TraceEventKind::SpanBegin {
                span: SpanKind::Transfer,
                key: id.raw(),
            });
            if enqueued_at < now {
                ctx.trace_event(TraceEventKind::TransferQueued {
                    transfer: id.raw(),
                    enqueued_at,
                });
            }
            ctx.trace_event(TraceEventKind::PetitionSent {
                transfer: id.raw(),
                to,
                bytes: size_bytes,
                parts: actual_parts,
            });
        }
        ctx.send(
            to,
            OverlayMsg::FilePetition {
                transfer: id,
                file,
                num_parts: actual_parts,
                sent_at: now,
            },
        );
        self.outbound.insert(id, outbound);
        self.arm_retry(ctx, id, RetryKind::Petition, 1);
        let tag = self.next_watchdog_tag;
        self.next_watchdog_tag += 1;
        self.watchdog_for.insert(tag, id);
        ctx.schedule_timer(self.cfg.transfer_timeout, tag);
        self.bump(ctx, |c| c.transfers_started);
        id
    }

    /// Arms a retransmission probe for the given message, when a retry
    /// policy is configured.
    fn arm_retry(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        transfer: TransferId,
        kind: RetryKind,
        attempt: u32,
    ) {
        let Some(policy) = self.cfg.retry else {
            return;
        };
        let tag = self.next_retry_tag;
        self.next_retry_tag += 1;
        self.retry_probes.insert(
            tag,
            RetryProbe {
                transfer,
                kind,
                attempt,
            },
        );
        ctx.schedule_timer(policy.timeout, tag);
    }

    fn send_part(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        transfer: TransferId,
        to: NodeId,
        index: u32,
        size: u64,
    ) {
        let now = ctx.now();
        self.sink.with(|log| {
            if let Some(rec) = log.transfer_mut(transfer) {
                rec.parts.push(PartRecord {
                    index,
                    size,
                    sent_at: now,
                    confirmed_at: None,
                });
            }
        });
        if let Some(&pipe) = self.pipe_for.get(&transfer) {
            self.pipes.account(pipe, size);
        }
        if ctx.trace_enabled() {
            ctx.trace_event(TraceEventKind::PartSent {
                transfer: transfer.raw(),
                index,
                bytes: size,
            });
        }
        ctx.send(
            to,
            OverlayMsg::FilePart {
                transfer,
                index,
                size,
            },
        );
        self.arm_retry(ctx, transfer, RetryKind::Part { index, size }, 1);
    }

    fn finish_transfer(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        transfer: TransferId,
        completed: bool,
    ) {
        let now = ctx.now();
        let Some(outbound) = self.outbound.remove(&transfer) else {
            return;
        };
        let to = outbound.to;
        let size = outbound.file.size_bytes;
        if let Some(pipe) = self.pipe_for.remove(&transfer) {
            if let Some(ep) = self.pipes.close(pipe) {
                if ctx.trace_enabled() {
                    ctx.trace_event(TraceEventKind::PipeClosed {
                        pipe: pipe.raw(),
                        messages: ep.messages,
                        bytes: ep.bytes,
                    });
                }
            }
        }
        if ctx.trace_enabled() {
            ctx.trace_event(TraceEventKind::TransferCompleted {
                transfer: transfer.raw(),
                ok: completed,
            });
            ctx.trace_event(TraceEventKind::SpanEnd {
                span: SpanKind::Transfer,
                key: transfer.raw(),
                ok: completed,
            });
        }
        ctx.send(
            to,
            if completed {
                OverlayMsg::TransferComplete { transfer }
            } else {
                OverlayMsg::TransferCancel { transfer }
            },
        );
        let mut elapsed = 0.0;
        let mut throughput = None;
        self.sink.with(|log| {
            if let Some(rec) = log.transfer_mut(transfer) {
                if completed {
                    rec.completed_at = Some(now);
                } else {
                    rec.cancelled = true;
                }
                elapsed = now.duration_since(rec.petition_sent_at).as_secs_f64();
                throughput = rec.throughput_bytes_per_sec();
            }
        });
        if let Some(peer) = self.by_node.get(&to).copied() {
            if let Some(entry) = self.peers.get_mut(&peer) {
                entry.stats.pending_transfers = entry.stats.pending_transfers.saturating_sub(1);
                entry.stats.outbox.decr(now);
                entry.stats.record_file_send(completed);
                entry.history.queued_bytes = entry.history.queued_bytes.saturating_sub(size);
                if completed {
                    entry.history.transfers_completed += 1;
                    if let Some(bps) = throughput {
                        entry.history.observe_throughput(bps, self.cfg.ewma_alpha);
                    }
                } else {
                    entry.history.transfers_cancelled += 1;
                }
            }
        }
        if let Some(selector) = self.cfg.selector.as_mut() {
            selector.on_outcome(&SelectionOutcome {
                node: to,
                success: completed,
                elapsed_secs: elapsed,
                bytes: size,
            });
        }
        self.bump(
            ctx,
            if completed {
                |c: &BrokerCounters| c.transfers_completed
            } else {
                |c: &BrokerCounters| c.transfers_cancelled
            },
        );

        // If this transfer was a task's input shipment, advance the task.
        if let Some(task_id) = self.input_transfer_to_task.remove(&transfer) {
            if completed {
                self.offer_task(ctx, task_id);
            } else {
                self.fail_task(ctx, task_id);
            }
        }
        self.maybe_stop(ctx);
    }

    fn offer_task(&mut self, ctx: &mut Context<OverlayMsg>, task_id: TaskId) {
        let now = ctx.now();
        let Some(tracking) = self.tasks.get_mut(&task_id) else {
            return;
        };
        tracking.phase = TaskPhase::Offered;
        tracking.offered_at = Some(now);
        if tracking.input_transfer.is_some() && tracking.input_done_at.is_none() {
            tracking.input_done_at = Some(now);
        }
        let node = tracking.node;
        let spec = tracking.spec.clone();
        self.sink.with(|log| {
            if let Some(rec) = log.task_mut(task_id) {
                rec.input_done_at = self.tasks.get(&task_id).and_then(|t| t.input_done_at);
            }
        });
        ctx.send(
            node,
            OverlayMsg::TaskOffer {
                task: spec,
                sent_at: now,
            },
        );
        let tag = self.next_task_watchdog_tag;
        self.next_task_watchdog_tag += 1;
        self.task_watchdog_for.insert(tag, task_id);
        ctx.schedule_timer(self.cfg.task_timeout, tag);
    }

    fn fail_task(&mut self, ctx: &mut Context<OverlayMsg>, task_id: TaskId) {
        if let Some(tracking) = self.tasks.get_mut(&task_id) {
            tracking.phase = TaskPhase::Failed;
        }
        if let Some(job) = self.job_for_task.remove(&task_id) {
            let total_secs = ctx.now().duration_since(job.submitted_at).as_secs_f64();
            ctx.send(
                job.submitter_node,
                OverlayMsg::JobDone {
                    label: job.label.clone(),
                    success: false,
                    total_secs,
                },
            );
            self.sink.with(|log| {
                if let Some(rec) = log
                    .jobs
                    .iter_mut()
                    .rev()
                    .find(|j| j.label == job.label && j.done_at.is_none())
                {
                    rec.done_at = Some(ctx.now());
                    rec.success = false;
                }
            });
        }
        self.sink.with(|log| {
            if let Some(rec) = log.task_mut(task_id) {
                rec.success = false;
                rec.result_at = None;
            }
        });
        self.bump(ctx, |c| c.tasks_failed);
        self.maybe_stop(ctx);
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_task(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        node: NodeId,
        work_gops: f64,
        input_bytes: u64,
        input_parts: u32,
        label: &str,
        enqueued_at: SimTime,
    ) {
        let now = ctx.now();
        let spec = TaskSpec {
            id: TaskId::generate(&mut self.ids),
            label: label.to_string(),
            work_gops,
            input_bytes,
        };
        let task_id = spec.id;
        let mut tracking = TaskTracking::new(spec, node, now);
        self.sink.with(|log| {
            log.tasks.push(TaskRecord {
                id: task_id,
                on: node,
                on_name: ctx_name(ctx, node),
                label: label.to_string(),
                input_bytes,
                work_gops,
                submitted_at: now,
                input_done_at: None,
                accepted_at: None,
                result_at: None,
                exec_secs: None,
                success: false,
            })
        });
        if input_bytes > 0 {
            let transfer = self.start_transfer(
                ctx,
                node,
                input_bytes,
                input_parts,
                &format!("{label}.input"),
                enqueued_at,
            );
            tracking.input_transfer = Some(transfer);
            self.input_transfer_to_task.insert(transfer, task_id);
            self.tasks.insert(task_id, tracking);
        } else {
            self.tasks.insert(task_id, tracking);
            self.offer_task(ctx, task_id);
        }
        self.bump(ctx, |c| c.tasks_submitted);
    }

    fn execute_command(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        cmd: BrokerCommand,
        enqueued_at: SimTime,
    ) {
        match cmd {
            BrokerCommand::DistributeFile {
                target,
                size_bytes,
                num_parts,
                label,
            } => {
                let purpose = Purpose::FileTransfer { bytes: size_bytes };
                for node in self.resolve_targets(ctx, &target, purpose) {
                    self.start_transfer(ctx, node, size_bytes, num_parts, &label, enqueued_at);
                }
            }
            BrokerCommand::SubmitTask {
                target,
                work_gops,
                input_bytes,
                input_parts,
                label,
            } => {
                let purpose = Purpose::TaskExecution {
                    work_gops: work_gops as u64,
                    input_bytes,
                };
                for node in self.resolve_targets(ctx, &target, purpose) {
                    self.submit_task(
                        ctx,
                        node,
                        work_gops,
                        input_bytes,
                        input_parts,
                        &label,
                        enqueued_at,
                    );
                }
            }
            BrokerCommand::SendInstant { target, text } => {
                let purpose = Purpose::FileTransfer {
                    bytes: text.len() as u64,
                };
                for node in self.resolve_targets(ctx, &target, purpose) {
                    ctx.send(
                        node,
                        OverlayMsg::Instant {
                            text: clone_text(&text),
                        },
                    );
                }
            }
        }
    }

    fn work_outstanding(&self) -> bool {
        self.commands_pending > 0
            || self.instructed_pending > 0
            || !self.outbound.is_empty()
            || self
                .tasks
                .values()
                .any(|t| !matches!(t.phase, TaskPhase::Completed | TaskPhase::Failed))
    }

    fn maybe_stop(&mut self, ctx: &mut Context<OverlayMsg>) {
        if self.cfg.stop_when_idle && !self.work_outstanding() {
            ctx.stop();
        }
    }
}

fn ctx_name(ctx: &Context<OverlayMsg>, node: NodeId) -> String {
    ctx.node_name(node).to_string()
}

/// Emits a [`TraceEventKind::SelectionDecided`] event with per-candidate
/// costs. Callers must check `ctx.trace_enabled()` first — cost extraction
/// re-runs the model's scoring pass, which is fine for observability (the
/// pass is read-only w.r.t. the simulation) but wasted work when disabled.
fn trace_selection(
    ctx: &mut Context<OverlayMsg>,
    selector: &mut dyn PeerSelector,
    req: &SelectionRequest<'_>,
    chosen: NodeId,
) {
    let costs = selector
        .candidate_costs(req)
        .map(|cs| req.candidates.iter().map(|c| c.node).zip(cs).collect())
        .unwrap_or_default();
    ctx.trace_event(TraceEventKind::SelectionDecided {
        model: selector.name().to_string(),
        chosen,
        costs,
    });
}

fn clone_text(t: &str) -> String {
    t.to_string()
}

impl Actor<OverlayMsg> for Broker {
    fn on_start(&mut self, ctx: &mut Context<OverlayMsg>) {
        self.counters = Some(BrokerCounters::resolve(ctx.metrics()));
        let commands = std::mem::take(&mut self.cfg.commands);
        for (i, (delay, _cmd)) in commands.iter().enumerate() {
            ctx.schedule_timer(*delay, CMD_TAG_BASE + i as u64);
        }
        self.cfg.commands = commands;
        if !self.cfg.peer_brokers.is_empty() {
            ctx.schedule_timer(self.cfg.gossip_interval, GOSSIP_TAG);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<OverlayMsg>, from: NodeId, msg: OverlayMsg) {
        let now = ctx.now();
        match msg {
            OverlayMsg::Join(adv) => {
                let peer = adv.peer;
                let cpu = adv.cpu_gops;
                self.by_node.insert(adv.node, peer);
                self.peers.entry(peer).or_insert_with(|| PeerEntry {
                    adv,
                    stats: PeerStats::new(now, cpu),
                    reported: None,
                    history: InteractionHistory::empty(),
                });
                let group = self.groups.admit(peer);
                ctx.send(from, OverlayMsg::JoinAck { group });
                self.bump(ctx, |c| c.joins);
            }
            OverlayMsg::Leave { peer } => {
                if let Some(entry) = self.peers.remove(&peer) {
                    self.by_node.remove(&entry.adv.node);
                }
                self.groups.expel(peer);
            }
            OverlayMsg::DiscoverPeers => {
                let adverts: Vec<PeerAdvertisement> = self
                    .peers
                    .values()
                    .map(|e| e.adv.clone())
                    .filter(|a| !a.is_expired(now))
                    .collect();
                ctx.send(from, OverlayMsg::DiscoverPeersResponse { adverts });
            }
            OverlayMsg::StatsReport { peer, snapshot } => {
                if let Some(entry) = self.peers.get_mut(&peer) {
                    entry.reported = Some(snapshot);
                    entry.stats.record_message(now, true);
                }
            }
            OverlayMsg::PetitionAck {
                transfer,
                accepted,
                petition_sent_at,
                handled_at,
            } => {
                // A duplicate ack (retransmitted petition) must not skew the
                // records or the latency history.
                let first_ack = self
                    .outbound
                    .get(&transfer)
                    .map(|t| t.phase == crate::filetransfer::TransferPhase::AwaitingPetitionAck)
                    .unwrap_or(false);
                if ctx.trace_enabled() {
                    ctx.trace_event(TraceEventKind::PetitionAcked {
                        transfer: transfer.raw(),
                        accepted,
                    });
                }
                if first_ack {
                    self.sink.with(|log| {
                        if let Some(rec) = log.transfer_mut(transfer) {
                            rec.petition_handled_at = Some(handled_at);
                            rec.petition_acked_at = Some(now);
                        }
                    });
                    let petition_latency =
                        handled_at.duration_since(petition_sent_at).as_secs_f64();
                    if let Some(peer) = self.by_node.get(&from).copied() {
                        if let Some(entry) = self.peers.get_mut(&peer) {
                            entry
                                .history
                                .observe_petition(petition_latency, self.cfg.ewma_alpha);
                            entry.stats.record_message(now, true);
                        }
                    }
                }
                let next = self
                    .outbound
                    .get_mut(&transfer)
                    .and_then(|t| t.on_petition_ack(accepted));
                match next {
                    Some((index, size)) => self.send_part(ctx, transfer, from, index, size),
                    None => {
                        if !accepted {
                            self.finish_transfer(ctx, transfer, false);
                        }
                    }
                }
            }
            OverlayMsg::PartConfirm { transfer, index } => {
                // First-confirm-wins: validate against the stop-and-wait
                // window BEFORE touching the record. A late duplicate
                // confirm (retransmitted part → receiver confirmed twice)
                // must not overwrite the original confirmed_at — that
                // inflates Fig 4's last_part_secs.
                let accepted = self
                    .outbound
                    .get(&transfer)
                    .map(|t| t.accepts_confirm(index))
                    .unwrap_or(false);
                if ctx.trace_enabled() {
                    ctx.trace_event(TraceEventKind::PartConfirmed {
                        transfer: transfer.raw(),
                        index,
                        accepted,
                    });
                }
                if accepted {
                    self.sink.with(|log| {
                        if let Some(rec) = log.transfer_mut(transfer) {
                            if let Some(part) = rec.parts.iter_mut().find(|p| p.index == index) {
                                if part.confirmed_at.is_none() {
                                    part.confirmed_at = Some(now);
                                }
                            }
                        }
                    });
                }
                let outcome = self
                    .outbound
                    .get_mut(&transfer)
                    .map(|t| (t.on_part_confirm(index), t.is_complete()));
                match outcome {
                    Some((Some((next_index, size)), _)) => {
                        self.send_part(ctx, transfer, from, next_index, size);
                    }
                    Some((None, true)) => self.finish_transfer(ctx, transfer, true),
                    _ => {}
                }
            }
            OverlayMsg::TaskAccept { task } => {
                if let Some(tracking) = self.tasks.get_mut(&task) {
                    tracking.phase = TaskPhase::Running;
                    tracking.accepted_at = Some(now);
                    let node = tracking.node;
                    self.sink.with(|log| {
                        if let Some(rec) = log.task_mut(task) {
                            rec.accepted_at = Some(now);
                        }
                    });
                    if let Some(peer) = self.by_node.get(&node).copied() {
                        if let Some(entry) = self.peers.get_mut(&peer) {
                            entry.stats.record_task_offer(true);
                        }
                    }
                }
            }
            OverlayMsg::TaskReject { task } => {
                if let Some(tracking) = self.tasks.get(&task) {
                    let node = tracking.node;
                    if let Some(peer) = self.by_node.get(&node).copied() {
                        if let Some(entry) = self.peers.get_mut(&peer) {
                            entry.stats.record_task_offer(false);
                        }
                    }
                }
                self.fail_task(ctx, task);
            }
            OverlayMsg::TaskResult {
                task,
                success,
                exec_secs,
            } => {
                let work_gops;
                if let Some(tracking) = self.tasks.get_mut(&task) {
                    tracking.phase = if success {
                        TaskPhase::Completed
                    } else {
                        TaskPhase::Failed
                    };
                    tracking.result_at = Some(now);
                    tracking.exec_secs = Some(exec_secs);
                    work_gops = tracking.spec.work_gops;
                    let node = tracking.node;
                    if let Some(peer) = self.by_node.get(&node).copied() {
                        if let Some(entry) = self.peers.get_mut(&peer) {
                            entry.stats.record_task_execution(success);
                            if success && exec_secs > 0.0 {
                                entry
                                    .history
                                    .observe_exec_rate(work_gops / exec_secs, self.cfg.ewma_alpha);
                            }
                        }
                    }
                }
                self.sink.with(|log| {
                    if let Some(rec) = log.task_mut(task) {
                        rec.result_at = Some(now);
                        rec.exec_secs = Some(exec_secs);
                        rec.success = success;
                    }
                });
                if let Some(selector) = self.cfg.selector.as_mut() {
                    if let Some(tracking) = self.tasks.get(&task) {
                        selector.on_outcome(&SelectionOutcome {
                            node: tracking.node,
                            success,
                            elapsed_secs: tracking.total_secs().unwrap_or(0.0),
                            bytes: tracking.spec.input_bytes,
                        });
                    }
                }
                if let Some(job) = self.job_for_task.remove(&task) {
                    let total_secs = now.duration_since(job.submitted_at).as_secs_f64();
                    ctx.send(
                        job.submitter_node,
                        OverlayMsg::JobDone {
                            label: job.label.clone(),
                            success,
                            total_secs,
                        },
                    );
                    self.sink.with(|log| {
                        if let Some(rec) = log
                            .jobs
                            .iter_mut()
                            .rev()
                            .find(|j| j.label == job.label && j.done_at.is_none())
                        {
                            rec.done_at = Some(now);
                            rec.success = success;
                        }
                    });
                }
                self.bump(ctx, |c| c.tasks_completed);
                self.maybe_stop(ctx);
            }
            OverlayMsg::PublishContent(adv) if self.peers.contains_key(&adv.owner) => {
                let node = self
                    .peers
                    .get(&adv.owner)
                    .map(|e| e.adv.node)
                    .unwrap_or(from);
                self.content
                    .entry(adv.name.clone())
                    .or_default()
                    .push(Holding {
                        peer: adv.owner,
                        node,
                        content: adv.content,
                        size: adv.size_bytes,
                        adv,
                    });
                self.bump(ctx, |c| c.content_published);
            }
            OverlayMsg::DiscoverContent { pattern } => {
                let adverts: Vec<crate::advertisement::ContentAdvertisement> = self
                    .content
                    .iter()
                    .filter(|(name, _)| name.contains(&pattern))
                    .flat_map(|(_, holdings)| holdings.iter())
                    .filter(|h| !h.adv.is_expired(now) && self.peers.contains_key(&h.peer))
                    .map(|h| h.adv.clone())
                    .collect();
                ctx.send(from, OverlayMsg::DiscoverContentResponse { adverts });
            }
            OverlayMsg::FileRequest { requester, name } => {
                let Some(requester_node) = self.peers.get(&requester).map(|e| e.adv.node) else {
                    return;
                };
                let holders: Vec<Holding> = self
                    .content
                    .get(&name)
                    .map(|hs| {
                        hs.iter()
                            .filter(|h| {
                                h.node != requester_node && self.peers.contains_key(&h.peer)
                            })
                            .cloned()
                            .collect()
                    })
                    .unwrap_or_default();
                if holders.is_empty() {
                    self.bump(ctx, |c| c.file_requests_unserved);
                    return;
                }
                let nodes: Vec<NodeId> = holders.iter().map(|h| h.node).collect();
                let size = holders[0].size;
                let Some(owner_node) =
                    self.select_among(ctx, &nodes, Purpose::FileTransfer { bytes: size })
                else {
                    return;
                };
                let holding = holders
                    .iter()
                    .find(|h| h.node == owner_node)
                    .expect("chosen among holders");
                ctx.send(
                    owner_node,
                    OverlayMsg::TransferInstruction {
                        to_node: requester_node,
                        file: FileMeta {
                            content: holding.content,
                            name,
                            size_bytes: holding.size,
                        },
                        num_parts: self.cfg.request_parts,
                    },
                );
                self.instructed_pending += 1;
                self.bump(ctx, |c| c.file_requests_served);
            }
            OverlayMsg::TransferReport {
                ok,
                elapsed_secs,
                bytes,
                ..
            } => {
                self.instructed_pending = self.instructed_pending.saturating_sub(1);
                if let Some(peer) = self.by_node.get(&from).copied() {
                    if let Some(entry) = self.peers.get_mut(&peer) {
                        entry.stats.record_file_send(ok);
                        if ok && elapsed_secs > 0.0 {
                            entry.history.observe_throughput(
                                bytes as f64 / elapsed_secs,
                                self.cfg.ewma_alpha,
                            );
                            entry.history.transfers_completed += 1;
                        } else if !ok {
                            entry.history.transfers_cancelled += 1;
                        }
                    }
                }
                if let Some(selector) = self.cfg.selector.as_mut() {
                    selector.on_outcome(&SelectionOutcome {
                        node: from,
                        success: ok,
                        elapsed_secs,
                        bytes,
                    });
                }
                self.maybe_stop(ctx);
            }
            OverlayMsg::JobSubmit {
                submitter,
                work_gops,
                input_bytes,
                input_parts,
                label,
            } => {
                let Some(submitter_node) = self.peers.get(&submitter).map(|e| e.adv.node) else {
                    return;
                };
                // Execute anywhere except the submitter itself.
                let candidates: Vec<NodeId> = self
                    .registered_nodes()
                    .into_iter()
                    .filter(|&n| n != submitter_node)
                    .collect();
                let purpose = Purpose::TaskExecution {
                    work_gops: work_gops as u64,
                    input_bytes,
                };
                let Some(executor) = self.select_among(ctx, &candidates, purpose) else {
                    self.bump(ctx, |c| c.jobs_unplaced);
                    return;
                };
                self.sink.with(|log| {
                    log.jobs.push(JobRecord {
                        label: label.clone(),
                        submitter: submitter_node,
                        executor,
                        submitted_at: now,
                        done_at: None,
                        success: false,
                    })
                });
                self.submit_task(
                    ctx,
                    executor,
                    work_gops,
                    input_bytes,
                    input_parts,
                    &label,
                    now,
                );
                // Remember which task realises this job: it is the one just
                // inserted with this label and executor.
                if let Some((task_id, _)) = self.tasks.iter().find(|(_, t)| {
                    t.spec.label == label && t.node == executor && t.result_at.is_none()
                }) {
                    self.job_for_task.insert(
                        *task_id,
                        JobInfo {
                            submitter_node,
                            label,
                            submitted_at: now,
                        },
                    );
                }
            }
            OverlayMsg::BrokerGossip { roster, .. } => {
                for view in roster {
                    // Never shadow a locally-registered peer with a relay.
                    if !self.by_node.contains_key(&view.node) {
                        self.remote_peers.insert(view.peer, view);
                    }
                }
                self.bump(ctx, |c| c.gossip_received);
            }
            OverlayMsg::Ping { nonce, sent_at } => {
                ctx.send(from, OverlayMsg::Pong { nonce, sent_at });
            }
            // Remaining messages are not addressed to brokers.
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<OverlayMsg>, _timer: TimerId, tag: u64) {
        if tag == GOSSIP_TAG {
            let roster = self.candidate_views(ctx.now());
            // Only gossip locally-registered peers (avoid relaying relays).
            let local: Vec<CandidateView> = roster
                .into_iter()
                .filter(|v| self.by_node.contains_key(&v.node))
                .collect();
            let me = ctx.self_id();
            for &b in &self.cfg.peer_brokers.clone() {
                ctx.send(
                    b,
                    OverlayMsg::BrokerGossip {
                        from_broker: me,
                        roster: local.clone(),
                    },
                );
            }
            ctx.schedule_timer(self.cfg.gossip_interval, GOSSIP_TAG);
            return;
        }
        if tag >= RETRY_TAG_BASE {
            let Some(probe) = self.retry_probes.remove(&tag) else {
                return;
            };
            let Some(outbound) = self.outbound.get(&probe.transfer) else {
                return; // transfer already finished
            };
            let stalled = match probe.kind {
                RetryKind::Petition => {
                    outbound.phase == crate::filetransfer::TransferPhase::AwaitingPetitionAck
                }
                RetryKind::Part { index, .. } => {
                    outbound.phase == crate::filetransfer::TransferPhase::Sending
                        && outbound.next_part == index + 1
                }
            };
            if !stalled {
                return;
            }
            let max = self.cfg.retry.map(|p| p.max_attempts).unwrap_or(1);
            if probe.attempt >= max {
                if let Some(t) = self.outbound.get_mut(&probe.transfer) {
                    t.cancel();
                }
                self.bump(ctx, |c| c.retries_exhausted);
                self.finish_transfer(ctx, probe.transfer, false);
                return;
            }
            let to = outbound.to;
            if ctx.trace_enabled() {
                ctx.trace_event(TraceEventKind::Retransmission {
                    transfer: probe.transfer.raw(),
                    part: match probe.kind {
                        RetryKind::Petition => None,
                        RetryKind::Part { index, .. } => Some(index),
                    },
                    attempt: probe.attempt + 1,
                });
            }
            match probe.kind {
                RetryKind::Petition => {
                    let file = outbound.file.clone();
                    let num_parts = outbound.num_parts();
                    let sent_at = outbound.petition_sent_at;
                    ctx.send(
                        to,
                        OverlayMsg::FilePetition {
                            transfer: probe.transfer,
                            file,
                            num_parts,
                            sent_at,
                        },
                    );
                }
                RetryKind::Part { index, size } => {
                    ctx.send(
                        to,
                        OverlayMsg::FilePart {
                            transfer: probe.transfer,
                            index,
                            size,
                        },
                    );
                }
            }
            self.bump(ctx, |c| c.retransmissions);
            self.arm_retry(ctx, probe.transfer, probe.kind, probe.attempt + 1);
            return;
        }
        if tag >= TASK_WATCHDOG_TAG_BASE {
            if let Some(task_id) = self.task_watchdog_for.remove(&tag) {
                let unfinished = self
                    .tasks
                    .get(&task_id)
                    .map(|t| !matches!(t.phase, TaskPhase::Completed | TaskPhase::Failed))
                    .unwrap_or(false);
                if unfinished {
                    self.bump(ctx, |c| c.tasks_timed_out);
                    self.fail_task(ctx, task_id);
                }
            }
            return;
        }
        if tag >= WATCHDOG_TAG_BASE {
            if let Some(transfer) = self.watchdog_for.remove(&tag) {
                let still_running = self
                    .outbound
                    .get(&transfer)
                    .map(|t| !t.is_complete())
                    .unwrap_or(false);
                if still_running {
                    if ctx.trace_enabled() {
                        ctx.trace_event(TraceEventKind::WatchdogFired {
                            transfer: transfer.raw(),
                        });
                    }
                    if let Some(t) = self.outbound.get_mut(&transfer) {
                        t.cancel();
                    }
                    self.finish_transfer(ctx, transfer, false);
                }
            }
            return;
        }
        if tag >= CMD_TAG_BASE {
            let idx = (tag - CMD_TAG_BASE) as usize;
            let Some((_, cmd)) = self.cfg.commands.get(idx).cloned() else {
                return;
            };
            let now = ctx.now();
            let enqueued_at = *self.command_first_due.entry(tag).or_insert(now);
            // Commands that need clients must wait until someone has joined.
            let needs_peers = !matches!(cmd, BrokerCommand::SendInstant { .. });
            if needs_peers && self.peers.is_empty() {
                let retries = self.command_retries.entry(tag).or_insert(0);
                if *retries < CMD_MAX_RETRIES {
                    *retries += 1;
                    ctx.schedule_timer(CMD_RETRY_DELAY, tag);
                    return;
                }
            }
            self.command_first_due.remove(&tag);
            self.commands_pending = self.commands_pending.saturating_sub(1);
            self.execute_command(ctx, cmd, enqueued_at);
            self.maybe_stop(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientConfig, SimpleClient};
    use netsim::link::{AccessLink, PathSpec};
    use netsim::node::NodeSpec;
    use netsim::prelude::*;

    /// Builds a broker + `n` clients on a simple star topology.
    fn star(
        n: usize,
        cfg_broker: impl FnOnce(NodeId) -> BrokerConfig,
    ) -> (Engine<OverlayMsg>, RecordSink, NodeId, Vec<NodeId>) {
        let mut topo = Topology::new();
        let broker_node = topo.add_node(
            NodeSpec::responsive("broker"),
            AccessLink::symmetric_mbps(80.0, 0.0001),
        );
        let mut clients = Vec::new();
        for i in 0..n {
            let c = topo.add_node(
                NodeSpec::responsive(format!("client{i}")),
                AccessLink::symmetric_mbps(8.0, 0.0003),
            );
            topo.set_path_symmetric(broker_node, c, PathSpec::from_owd_ms(20.0, 0.0));
            clients.push(c);
        }
        let sink = RecordSink::new();
        let mut engine = Engine::new(topo, TransportConfig::default(), 42);
        engine.register(
            broker_node,
            Box::new(Broker::new(cfg_broker(broker_node), sink.clone())),
        );
        for (i, &c) in clients.iter().enumerate() {
            engine.register(
                c,
                Box::new(SimpleClient::new(
                    ClientConfig::new(broker_node),
                    1000 + i as u64,
                )),
            );
        }
        (engine, sink, broker_node, clients)
    }

    #[test]
    fn clients_join_and_transfer_completes() {
        let (mut engine, sink, _b, clients) = star(2, |_| {
            BrokerConfig::new(7).at(
                SimDuration::from_secs(1),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: 4 << 20,
                    num_parts: 4,
                    label: "t".into(),
                },
            )
        });
        let outcome = engine.run_until(SimTime::from_secs_f64(3600.0));
        assert_eq!(outcome, RunOutcome::Stopped, "broker stops when idle");
        let log = sink.drain();
        assert_eq!(log.transfers.len(), 2);
        for t in &log.transfers {
            assert!(
                t.completed_at.is_some(),
                "transfer to {} incomplete",
                t.to_name
            );
            assert!(!t.cancelled);
            assert_eq!(t.parts.len(), 4);
            assert!(t.parts.iter().all(|p| p.confirmed_at.is_some()));
            assert!(clients.contains(&t.to));
            assert!(t.petition_latency_secs().unwrap() > 0.0);
            assert!(t.total_secs().unwrap() > 0.0);
        }
    }

    #[test]
    fn single_part_transfer_is_whole_file() {
        let (mut engine, sink, _b, _c) = star(1, |_| {
            BrokerConfig::new(8).at(
                SimDuration::from_secs(1),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: 1 << 20,
                    num_parts: 1,
                    label: "whole".into(),
                },
            )
        });
        engine.run_until(SimTime::from_secs_f64(3600.0));
        let log = sink.drain();
        assert_eq!(log.transfers.len(), 1);
        assert_eq!(log.transfers[0].num_parts, 1);
        assert!(log.transfers[0].completed_at.is_some());
    }

    #[test]
    fn task_without_input_runs_to_completion() {
        let (mut engine, sink, _b, clients) = star(1, |_| {
            BrokerConfig::new(9).at(
                SimDuration::from_secs(1),
                BrokerCommand::SubmitTask {
                    target: TargetSpec::Node(NodeId(1)),
                    work_gops: 10.0,
                    input_bytes: 0,
                    input_parts: 1,
                    label: "compute".into(),
                },
            )
        });
        engine.run_until(SimTime::from_secs_f64(3600.0));
        let log = sink.drain();
        assert_eq!(log.tasks.len(), 1);
        let t = &log.tasks[0];
        assert_eq!(t.on, clients[0]);
        assert!(t.success);
        assert!(t.exec_secs.unwrap() > 0.0);
        assert!(t.accepted_at.is_some());
        assert!(t.total_secs().unwrap() >= t.exec_secs.unwrap());
        assert_eq!(t.input_done_at, None);
    }

    #[test]
    fn task_with_input_ships_file_first() {
        let (mut engine, sink, _b, _c) = star(1, |_| {
            BrokerConfig::new(10).at(
                SimDuration::from_secs(1),
                BrokerCommand::SubmitTask {
                    target: TargetSpec::AllClients,
                    work_gops: 5.0,
                    input_bytes: 2 << 20,
                    input_parts: 4,
                    label: "process".into(),
                },
            )
        });
        engine.run_until(SimTime::from_secs_f64(3600.0));
        let log = sink.drain();
        assert_eq!(log.tasks.len(), 1);
        assert_eq!(log.transfers.len(), 1, "input shipped as a transfer");
        let task = &log.tasks[0];
        assert!(task.success);
        assert!(task.input_done_at.is_some());
        // Makespan covers transfer + execution.
        let transfer_secs = log.transfers[0].total_secs().unwrap();
        assert!(task.total_secs().unwrap() > transfer_secs);
    }

    #[test]
    fn refusing_client_causes_cancel() {
        let mut topo = Topology::new();
        let broker_node = topo.add_node(
            NodeSpec::responsive("broker"),
            AccessLink::symmetric_mbps(80.0, 0.0001),
        );
        let c = topo.add_node(
            NodeSpec::responsive("refuser"),
            AccessLink::symmetric_mbps(8.0, 0.0003),
        );
        topo.set_path_symmetric(broker_node, c, PathSpec::from_owd_ms(20.0, 0.0));
        let sink = RecordSink::new();
        let mut engine = Engine::new(topo, TransportConfig::default(), 5);
        engine.register(
            broker_node,
            Box::new(Broker::new(
                BrokerConfig::new(11).at(
                    SimDuration::from_secs(1),
                    BrokerCommand::DistributeFile {
                        target: TargetSpec::AllClients,
                        size_bytes: 1 << 20,
                        num_parts: 2,
                        label: "refused".into(),
                    },
                ),
                sink.clone(),
            )),
        );
        let mut cfg = ClientConfig::new(broker_node);
        cfg.refuse_transfers = true;
        engine.register(c, Box::new(SimpleClient::new(cfg, 99)));
        engine.run_until(SimTime::from_secs_f64(3600.0));
        let log = sink.drain();
        assert_eq!(log.transfers.len(), 1);
        assert!(log.transfers[0].cancelled);
        assert!(log.transfers[0].completed_at.is_none());
    }

    #[test]
    fn selected_target_uses_selector_and_records_decision() {
        let (mut engine, sink, _b, _c) = star(3, |_| {
            BrokerConfig::new(12)
                .with_selector(Box::new(crate::selector::RoundRobinSelector::new()))
                .at(
                    SimDuration::from_secs(2),
                    BrokerCommand::DistributeFile {
                        target: TargetSpec::Selected,
                        size_bytes: 1 << 20,
                        num_parts: 2,
                        label: "sel".into(),
                    },
                )
        });
        engine.run_until(SimTime::from_secs_f64(3600.0));
        let log = sink.drain();
        assert_eq!(log.selections.len(), 1);
        assert_eq!(log.selections[0].model, "round-robin");
        assert_eq!(log.selections[0].candidates, 3);
        assert_eq!(log.transfers.len(), 1);
        assert_eq!(log.transfers[0].to, log.selections[0].chosen);
    }

    #[test]
    fn commands_wait_for_peers_to_join() {
        // Command scheduled at t=0, before any Join can arrive; the broker
        // must retry until the client is registered.
        let (mut engine, sink, _b, _c) = star(1, |_| {
            BrokerConfig::new(13).at(
                SimDuration::ZERO,
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: 1 << 20,
                    num_parts: 2,
                    label: "early".into(),
                },
            )
        });
        engine.run_until(SimTime::from_secs_f64(3600.0));
        let log = sink.drain();
        assert_eq!(log.transfers.len(), 1);
        assert!(log.transfers[0].completed_at.is_some());
    }

    #[test]
    fn instant_message_reaches_clients() {
        let (mut engine, _sink, _b, clients) = star(2, |_| {
            let mut cfg = BrokerConfig::new(14).at(
                SimDuration::from_secs(1),
                BrokerCommand::SendInstant {
                    target: TargetSpec::AllClients,
                    text: "hello peers".into(),
                },
            );
            cfg.stop_when_idle = true;
            cfg
        });
        engine.run_until(SimTime::from_secs_f64(120.0));
        for &c in &clients {
            let got = engine.with_actor(c, |_a| ()).is_some();
            assert!(got);
        }
        assert!(engine.metrics().counter("net.messages_sent") > 0);
    }

    /// Star topology where client configs are customised per index.
    fn star_with(
        n: usize,
        broker_cfg: BrokerConfig,
        mut client_cfg: impl FnMut(usize, NodeId) -> ClientConfig,
        sink: &RecordSink,
    ) -> (Engine<OverlayMsg>, NodeId, Vec<NodeId>) {
        let mut topo = Topology::new();
        let broker_node = topo.add_node(
            NodeSpec::responsive("broker"),
            AccessLink::symmetric_mbps(80.0, 0.0001),
        );
        let mut clients = Vec::new();
        for i in 0..n {
            let c = topo.add_node(
                NodeSpec::responsive(format!("client{i}")),
                AccessLink::symmetric_mbps(8.0, 0.0003),
            );
            topo.set_path_symmetric(broker_node, c, PathSpec::from_owd_ms(20.0, 0.0));
            clients.push(c);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                topo.set_path_symmetric(clients[i], clients[j], PathSpec::from_owd_ms(30.0, 0.0));
            }
        }
        let mut engine = Engine::new(topo, TransportConfig::default(), 42);
        engine.register(broker_node, Box::new(Broker::new(broker_cfg, sink.clone())));
        for (i, &c) in clients.iter().enumerate() {
            engine.register(
                c,
                Box::new(
                    SimpleClient::new(client_cfg(i, broker_node), 1000 + i as u64)
                        .with_sink(sink.clone()),
                ),
            );
        }
        (engine, broker_node, clients)
    }

    #[test]
    fn file_request_is_served_peer_to_peer() {
        let sink = RecordSink::new();
        // Keep the run alive past the sender's TransferReport: stopping at
        // the broker's first idle moment would strand the in-flight
        // TransferComplete that carries the receiver's byte tally.
        let mut bcfg = BrokerConfig::new(21);
        bcfg.stop_when_idle = false;
        let (mut engine, _b, clients) = star_with(
            2,
            bcfg,
            |i, broker| {
                let cfg = ClientConfig::new(broker);
                if i == 0 {
                    cfg.sharing("dataset.bin", 2 << 20)
                } else {
                    cfg.at(
                        SimDuration::from_secs(5),
                        crate::client::ClientCommand::RequestFile {
                            name: "dataset.bin".into(),
                        },
                    )
                }
            },
            &sink,
        );
        engine.run_until(SimTime::from_secs_f64(3600.0));
        let log = sink.drain();
        let xfer = log
            .transfers
            .iter()
            .find(|t| t.label == "dataset.bin")
            .expect("peer-to-peer transfer recorded");
        assert_eq!(xfer.to, clients[1], "file flows to the requester");
        assert!(xfer.completed_at.is_some());
        assert!(!xfer.cancelled);
        assert_eq!(
            xfer.receiver_bytes,
            Some(2 << 20),
            "receiver tallies every byte exactly once"
        );
        assert_eq!(engine.metrics().counter("overlay.file_requests_served"), 1);
        assert_eq!(engine.metrics().counter("overlay.content_published"), 1);
    }

    #[test]
    fn file_request_for_unknown_content_is_counted() {
        let sink = RecordSink::new();
        let (mut engine, _b, _c) = star_with(
            1,
            BrokerConfig::new(22),
            |_, broker| {
                ClientConfig::new(broker).at(
                    SimDuration::from_secs(5),
                    crate::client::ClientCommand::RequestFile {
                        name: "missing.bin".into(),
                    },
                )
            },
            &sink,
        );
        engine.run_until(SimTime::from_secs_f64(600.0));
        assert_eq!(
            engine.metrics().counter("overlay.file_requests_unserved"),
            1
        );
    }

    #[test]
    fn file_request_selects_among_multiple_owners() {
        let sink = RecordSink::new();
        let mut broker_cfg = BrokerConfig::new(23)
            .with_selector(Box::new(crate::selector::RoundRobinSelector::new()));
        // The broker cannot see future client-scheduled commands, so don't
        // let it stop at the first idle moment.
        broker_cfg.stop_when_idle = false;
        let (mut engine, _b, clients) = star_with(
            3,
            broker_cfg,
            |i, broker| {
                let cfg = ClientConfig::new(broker);
                if i < 2 {
                    cfg.sharing("replicated.iso", 1 << 20)
                } else {
                    cfg.at(
                        SimDuration::from_secs(5),
                        crate::client::ClientCommand::RequestFile {
                            name: "replicated.iso".into(),
                        },
                    )
                    .at(
                        SimDuration::from_secs(60),
                        crate::client::ClientCommand::RequestFile {
                            name: "replicated.iso".into(),
                        },
                    )
                }
            },
            &sink,
        );
        engine.run_until(SimTime::from_secs_f64(3600.0));
        let log = sink.drain();
        assert_eq!(engine.metrics().counter("overlay.file_requests_served"), 2);
        assert_eq!(
            log.selections.len(),
            2,
            "selector consulted when several peers hold the content"
        );
        let completed = log
            .transfers
            .iter()
            .filter(|t| t.label == "replicated.iso" && t.completed_at.is_some())
            .count();
        assert_eq!(completed, 2);
        for t in &log.transfers {
            assert_eq!(t.to, clients[2]);
        }
    }

    #[test]
    fn client_submitted_job_round_trips() {
        let sink = RecordSink::new();
        let (mut engine, _b, clients) = star_with(
            3,
            BrokerConfig::new(24),
            |i, broker| {
                let cfg = ClientConfig::new(broker);
                if i == 0 {
                    cfg.at(
                        SimDuration::from_secs(5),
                        crate::client::ClientCommand::SubmitJob {
                            work_gops: 10.0,
                            input_bytes: 1 << 20,
                            input_parts: 2,
                            label: "render".into(),
                        },
                    )
                } else {
                    cfg
                }
            },
            &sink,
        );
        engine.run_until(SimTime::from_secs_f64(3600.0));
        let log = sink.drain();
        assert_eq!(log.jobs.len(), 1);
        let job = &log.jobs[0];
        assert_eq!(job.label, "render");
        assert_eq!(job.submitter, clients[0]);
        assert_ne!(job.executor, clients[0], "job runs on a different peer");
        assert!(job.success, "job completed");
        assert!(job.total_secs().unwrap() > 0.0);
        // Its input travelled as a transfer and the task executed.
        assert_eq!(log.tasks.len(), 1);
        assert!(log.tasks[0].success);
    }

    #[test]
    fn federated_brokers_select_across_domains() {
        // Broker A governs clients 0–1; broker B governs clients 2–3.
        // After gossip, A's selection sees all four peers.
        let mut topo = Topology::new();
        let broker_a = topo.add_node(
            NodeSpec::responsive("broker-a"),
            AccessLink::symmetric_mbps(80.0, 0.0001),
        );
        let broker_b = topo.add_node(
            NodeSpec::responsive("broker-b"),
            AccessLink::symmetric_mbps(80.0, 0.0001),
        );
        topo.set_path_symmetric(broker_a, broker_b, PathSpec::from_owd_ms(10.0, 0.0));
        let mut clients = Vec::new();
        for i in 0..4 {
            let c = topo.add_node(
                NodeSpec::responsive(format!("client{i}")),
                AccessLink::symmetric_mbps(8.0, 0.0003),
            );
            topo.set_path_symmetric(broker_a, c, PathSpec::from_owd_ms(20.0, 0.0));
            topo.set_path_symmetric(broker_b, c, PathSpec::from_owd_ms(20.0, 0.0));
            clients.push(c);
        }
        let sink = RecordSink::new();
        let mut cfg_a = BrokerConfig::new(31)
            .with_selector(Box::new(crate::selector::RoundRobinSelector::new()))
            .at(
                // Well after the first gossip round (60 s).
                SimDuration::from_secs(150),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::Selected,
                    size_bytes: 1 << 20,
                    num_parts: 2,
                    label: "federated".into(),
                },
            );
        cfg_a.peer_brokers = vec![broker_b];
        let mut cfg_b = BrokerConfig::new(32);
        cfg_b.peer_brokers = vec![broker_a];
        cfg_b.stop_when_idle = false;
        let mut engine = Engine::new(topo, TransportConfig::default(), 77);
        engine.register(broker_a, Box::new(Broker::new(cfg_a, sink.clone())));
        engine.register(broker_b, Box::new(Broker::new(cfg_b, RecordSink::new())));
        for (i, &c) in clients.iter().enumerate() {
            let broker = if i < 2 { broker_a } else { broker_b };
            engine.register(
                c,
                Box::new(SimpleClient::new(
                    ClientConfig::new(broker),
                    3000 + i as u64,
                )),
            );
        }
        engine.run_until(SimTime::from_secs_f64(400.0));
        let log = sink.drain();
        assert_eq!(log.selections.len(), 1);
        assert_eq!(
            log.selections[0].candidates, 4,
            "broker A must see B's peers after gossip"
        );
        assert_eq!(log.transfers.len(), 1);
        assert!(log.transfers[0].completed_at.is_some());
        assert!(engine.metrics().counter("overlay.gossip_received") >= 2);
    }

    #[test]
    fn task_watchdog_fails_unanswered_offers() {
        // The task goes to a host with no running application: the offer is
        // never answered, so the task watchdog must fail it (and the broker
        // must then be able to stop as idle).
        let mut topo = Topology::new();
        let broker_node = topo.add_node(
            NodeSpec::responsive("broker"),
            AccessLink::symmetric_mbps(80.0, 0.0001),
        );
        let alive = topo.add_node(
            NodeSpec::responsive("alive"),
            AccessLink::symmetric_mbps(8.0, 0.0003),
        );
        let dead = topo.add_node(
            NodeSpec::responsive("dead"),
            AccessLink::symmetric_mbps(8.0, 0.0003),
        );
        topo.set_path_symmetric(broker_node, alive, PathSpec::from_owd_ms(20.0, 0.0));
        topo.set_path_symmetric(broker_node, dead, PathSpec::from_owd_ms(20.0, 0.0));
        let sink = RecordSink::new();
        let mut bcfg = BrokerConfig::new(41).at(
            SimDuration::from_secs(5),
            BrokerCommand::SubmitTask {
                target: TargetSpec::Node(dead),
                work_gops: 5.0,
                input_bytes: 0,
                input_parts: 1,
                label: "doomed".into(),
            },
        );
        bcfg.task_timeout = SimDuration::from_secs(60);
        let mut engine = Engine::new(topo, TransportConfig::default(), 13);
        engine.register(broker_node, Box::new(Broker::new(bcfg, sink.clone())));
        engine.register(
            alive,
            Box::new(SimpleClient::new(ClientConfig::new(broker_node), 50)),
        );
        // `dead` has no actor registered.
        let outcome = engine.run_until(SimTime::from_secs_f64(600.0));
        assert_eq!(outcome, RunOutcome::Stopped, "broker stops after timeout");
        assert!(
            engine.now().as_secs_f64() < 120.0,
            "watchdog fired at ~65 s"
        );
        assert_eq!(engine.metrics().counter("overlay.tasks_timed_out"), 1);
        let log = sink.drain();
        assert_eq!(log.tasks.len(), 1);
        assert!(!log.tasks[0].success);
    }

    /// Star with a lossy transport and optional retry policy.
    fn lossy_star(
        drop_p: f64,
        retry: Option<RetryPolicy>,
        timeout: SimDuration,
    ) -> (Engine<OverlayMsg>, RecordSink) {
        let mut topo = Topology::new();
        let broker_node = topo.add_node(
            NodeSpec::responsive("broker"),
            AccessLink::symmetric_mbps(80.0, 0.0001),
        );
        let c = topo.add_node(
            NodeSpec::responsive("client"),
            AccessLink::symmetric_mbps(8.0, 0.0003),
        );
        topo.set_path_symmetric(broker_node, c, PathSpec::from_owd_ms(20.0, 0.0));
        let sink = RecordSink::new();
        let transport = TransportConfig {
            message_drop_probability: drop_p,
            ..TransportConfig::default()
        };
        let mut engine = Engine::new(topo, transport, 1234);
        let mut bcfg = BrokerConfig::new(51).at(
            SimDuration::from_secs(1),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 8 << 20,
                num_parts: 16,
                label: "lossy".into(),
            },
        );
        bcfg.retry = retry;
        bcfg.transfer_timeout = timeout;
        engine.register(broker_node, Box::new(Broker::new(bcfg, sink.clone())));
        engine.register(
            c,
            Box::new(SimpleClient::new(ClientConfig::new(broker_node), 99)),
        );
        (engine, sink)
    }

    #[test]
    fn retransmission_completes_transfers_on_lossy_networks() {
        // 10% whole-message loss: a 16-part stop-and-wait transfer has
        // ~97% chance of losing at least one message; retries recover it.
        let (mut engine, sink) = lossy_star(
            0.10,
            Some(RetryPolicy {
                timeout: SimDuration::from_secs(20),
                max_attempts: 8,
            }),
            SimDuration::from_mins(60),
        );
        engine.run_until(SimTime::from_secs_f64(3600.0));
        assert!(
            engine.metrics().counter("net.messages_lost") > 0,
            "loss occurred"
        );
        assert!(
            engine.metrics().counter("overlay.retransmissions") > 0,
            "retries fired"
        );
        let log = sink.drain();
        assert_eq!(log.transfers.len(), 1);
        assert!(
            log.transfers[0].completed_at.is_some(),
            "transfer must complete despite loss"
        );
        // Every byte arrived exactly once despite duplicates on the wire.
        let sent: u64 = log.transfers[0].parts.iter().map(|p| p.size).sum();
        assert_eq!(sent, 8 << 20);
    }

    #[test]
    fn without_retries_loss_stalls_and_watchdog_cancels() {
        let (mut engine, sink) = lossy_star(0.10, None, SimDuration::from_secs(120));
        engine.run_until(SimTime::from_secs_f64(3600.0));
        let log = sink.drain();
        assert_eq!(log.transfers.len(), 1);
        assert!(
            log.transfers[0].cancelled,
            "a lost message stalls stop-and-wait; the watchdog cancels"
        );
    }

    #[test]
    fn retries_exhaust_and_cancel_cleanly() {
        // 100% loss after the join (drop only applies between distinct
        // nodes, and the join itself may be lost — use a huge drop rate and
        // verify the run terminates with a cancelled or absent transfer).
        let (mut engine, sink) = lossy_star(
            0.9,
            Some(RetryPolicy {
                timeout: SimDuration::from_secs(5),
                max_attempts: 3,
            }),
            SimDuration::from_mins(30),
        );
        engine.run_until(SimTime::from_secs_f64(7200.0));
        let log = sink.drain();
        for t in &log.transfers {
            assert!(
                t.completed_at.is_some() || t.cancelled,
                "no transfer may dangle"
            );
        }
    }

    #[test]
    fn watchdog_cancels_stuck_transfers() {
        let mut topo = Topology::new();
        let broker_node = topo.add_node(
            NodeSpec::responsive("broker"),
            AccessLink::symmetric_mbps(80.0, 0.0001),
        );
        // Pathologically slow client link: the transfer cannot finish
        // within the watchdog timeout.
        let c = topo.add_node(
            NodeSpec::responsive("slow"),
            AccessLink::symmetric_mbps(0.001, 0.01),
        );
        topo.set_path_symmetric(broker_node, c, PathSpec::from_owd_ms(150.0, 0.0));
        let sink = RecordSink::new();
        let mut engine = Engine::new(topo, TransportConfig::default(), 6);
        let mut bcfg = BrokerConfig::new(15).at(
            SimDuration::from_secs(1),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 200 << 20,
                num_parts: 2,
                label: "stuck".into(),
            },
        );
        bcfg.transfer_timeout = SimDuration::from_secs(60);
        engine.register(broker_node, Box::new(Broker::new(bcfg, sink.clone())));
        engine.register(
            c,
            Box::new(SimpleClient::new(ClientConfig::new(broker_node), 44)),
        );
        engine.run_until(SimTime::from_secs_f64(7200.0));
        let log = sink.drain();
        assert_eq!(log.transfers.len(), 1);
        assert!(log.transfers[0].cancelled, "watchdog should cancel");
    }

    /// A hostile receiver that confirms every part twice. The duplicate
    /// confirm arrives after the sender has already advanced its window;
    /// before the first-confirm-wins fix the broker stamped `confirmed_at`
    /// prior to validating the confirm, so the duplicate dragged the
    /// milestone forward — past the next part's send instant, and past
    /// `completed_at` for the final part (inflating `last_part_secs`).
    struct DoubleConfirmClient {
        peer: PeerId,
        broker: NodeId,
    }

    impl Actor<OverlayMsg> for DoubleConfirmClient {
        fn on_start(&mut self, ctx: &mut Context<OverlayMsg>) {
            let adv = PeerAdvertisement {
                peer: self.peer,
                node: ctx.self_id(),
                name: ctx.node_name(ctx.self_id()).to_string(),
                cpu_gops: 1.0,
                accepts_tasks: false,
                published: ctx.now(),
                lifetime: crate::advertisement::DEFAULT_LIFETIME,
            };
            ctx.send(self.broker, OverlayMsg::Join(adv));
        }

        fn on_message(&mut self, ctx: &mut Context<OverlayMsg>, from: NodeId, msg: OverlayMsg) {
            match msg {
                OverlayMsg::FilePetition {
                    transfer, sent_at, ..
                } => {
                    ctx.send(
                        from,
                        OverlayMsg::PetitionAck {
                            transfer,
                            accepted: true,
                            petition_sent_at: sent_at,
                            handled_at: ctx.now(),
                        },
                    );
                }
                OverlayMsg::FilePart {
                    transfer, index, ..
                } => {
                    ctx.send(from, OverlayMsg::PartConfirm { transfer, index });
                    ctx.send(from, OverlayMsg::PartConfirm { transfer, index });
                }
                _ => {}
            }
        }
    }

    #[test]
    fn duplicate_confirms_do_not_move_part_milestones() {
        let mut topo = Topology::new();
        let broker_node = topo.add_node(
            NodeSpec::responsive("broker"),
            AccessLink::symmetric_mbps(80.0, 0.0001),
        );
        let c = topo.add_node(
            NodeSpec::responsive("doubler"),
            AccessLink::symmetric_mbps(8.0, 0.0003),
        );
        topo.set_path_symmetric(broker_node, c, PathSpec::from_owd_ms(20.0, 0.0));
        let sink = RecordSink::new();
        let mut engine = Engine::new(topo, TransportConfig::default(), 17);
        let bcfg = BrokerConfig::new(61).at(
            SimDuration::from_secs(1),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 4 << 20,
                num_parts: 4,
                label: "dup".into(),
            },
        );
        engine.register(broker_node, Box::new(Broker::new(bcfg, sink.clone())));
        let mut ids = IdGenerator::new(7);
        engine.register(
            c,
            Box::new(DoubleConfirmClient {
                peer: PeerId::generate(&mut ids),
                broker: broker_node,
            }),
        );
        engine.run_until(SimTime::from_secs_f64(3600.0));
        let log = sink.drain();
        assert_eq!(log.transfers.len(), 1);
        let rec = &log.transfers[0];
        let completed = rec.completed_at.expect("transfer completes");
        assert_eq!(rec.parts.len(), 4);
        for pair in rec.parts.windows(2) {
            let confirmed = pair[0].confirmed_at.expect("confirmed");
            assert!(
                confirmed <= pair[1].sent_at,
                "part {} confirm ({:?}) must not postdate part {} send ({:?})",
                pair[0].index,
                confirmed,
                pair[1].index,
                pair[1].sent_at,
            );
        }
        let last = rec.parts.last().unwrap();
        assert!(
            last.confirmed_at.unwrap() <= completed,
            "last confirm must not postdate completion (first-confirm-wins)"
        );
        assert_eq!(
            last.confirmed_at,
            Some(completed),
            "completion is stamped at the accepted (first) confirm"
        );
        assert!(rec.last_part_secs().unwrap() > 0.0);
    }

    #[test]
    fn lossy_retransmissions_keep_first_confirm_milestones() {
        // Lossy network + retries ⇒ duplicate parts and duplicate confirms
        // on the wire. First-confirm-wins must keep per-part milestones
        // causally ordered: each confirm at or before the next part's send.
        let (mut engine, sink) = lossy_star(
            0.10,
            Some(RetryPolicy {
                timeout: SimDuration::from_secs(20),
                max_attempts: 8,
            }),
            SimDuration::from_mins(60),
        );
        engine.run_until(SimTime::from_secs_f64(3600.0));
        let log = sink.drain();
        assert_eq!(log.transfers.len(), 1);
        let rec = &log.transfers[0];
        assert!(rec.completed_at.is_some(), "transfer completes under loss");
        for p in &rec.parts {
            let confirmed = p.confirmed_at.expect("every part confirmed");
            assert!(confirmed >= p.sent_at, "confirm cannot precede send");
        }
        for pair in rec.parts.windows(2) {
            assert!(
                pair[0].confirmed_at.unwrap() <= pair[1].sent_at,
                "stale duplicate confirm moved part {} milestone",
                pair[0].index
            );
            assert!(pair[0].index < pair[1].index, "indices strictly increase");
        }
    }
}
