//! JXTA-style advertisements.
//!
//! In JXTA every discoverable resource — peers, pipes, shared content — is
//! announced through an *advertisement*: a small self-describing document
//! with a publication time and a lifetime. Brokers cache advertisements and
//! answer discovery queries from that cache; expired advertisements are
//! purged lazily.

use netsim::node::NodeId;
use netsim::time::{SimDuration, SimTime};

use crate::id::{ContentId, PeerId, PipeId};

/// Announces a peer and its capabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerAdvertisement {
    /// The advertised peer.
    pub peer: PeerId,
    /// The simulated host the peer runs on.
    pub node: NodeId,
    /// Human-readable peer name (hostname in our testbed).
    pub name: String,
    /// Advertised CPU rate in giga-ops/second.
    pub cpu_gops: f64,
    /// Whether the peer accepts executable tasks.
    pub accepts_tasks: bool,
    /// Publication time.
    pub published: SimTime,
    /// Validity period from publication.
    pub lifetime: SimDuration,
}

impl PeerAdvertisement {
    /// True once the advertisement's lifetime has elapsed.
    pub fn is_expired(&self, now: SimTime) -> bool {
        now > self.published + self.lifetime
    }

    /// Approximate serialized size in bytes.
    pub fn wire_size(&self) -> u64 {
        96 + self.name.len() as u64
    }
}

/// Announces a unicast pipe endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct PipeAdvertisement {
    /// The advertised pipe.
    pub pipe: PipeId,
    /// The peer that listens on it.
    pub owner: PeerId,
    /// Pipe name (service label).
    pub name: String,
    /// Publication time.
    pub published: SimTime,
    /// Validity period from publication.
    pub lifetime: SimDuration,
}

impl PipeAdvertisement {
    /// True once the advertisement's lifetime has elapsed.
    pub fn is_expired(&self, now: SimTime) -> bool {
        now > self.published + self.lifetime
    }

    /// Approximate serialized size in bytes.
    pub fn wire_size(&self) -> u64 {
        80 + self.name.len() as u64
    }
}

/// Announces shared content (a file available for transfer).
#[derive(Debug, Clone, PartialEq)]
pub struct ContentAdvertisement {
    /// The advertised content item.
    pub content: ContentId,
    /// The peer that holds it.
    pub owner: PeerId,
    /// File name.
    pub name: String,
    /// File size in bytes.
    pub size_bytes: u64,
    /// Publication time.
    pub published: SimTime,
    /// Validity period from publication.
    pub lifetime: SimDuration,
}

impl ContentAdvertisement {
    /// True once the advertisement's lifetime has elapsed.
    pub fn is_expired(&self, now: SimTime) -> bool {
        now > self.published + self.lifetime
    }

    /// Approximate serialized size in bytes.
    pub fn wire_size(&self) -> u64 {
        88 + self.name.len() as u64
    }
}

/// Default advertisement lifetime (JXTA's default is on the order of hours).
pub const DEFAULT_LIFETIME: SimDuration = SimDuration::from_secs(2 * 3600);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::IdGenerator;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn peer_adv(published: SimTime, lifetime: SimDuration) -> PeerAdvertisement {
        let mut g = IdGenerator::new(1);
        PeerAdvertisement {
            peer: PeerId::generate(&mut g),
            node: NodeId(0),
            name: "host.example".into(),
            cpu_gops: 1.5,
            accepts_tasks: true,
            published,
            lifetime,
        }
    }

    #[test]
    fn expiry_logic() {
        let adv = peer_adv(t(100), SimDuration::from_secs(50));
        assert!(!adv.is_expired(t(100)));
        assert!(!adv.is_expired(t(150))); // boundary: still valid at exactly published+lifetime
        assert!(adv.is_expired(t(151)));
    }

    #[test]
    fn wire_sizes_scale_with_name() {
        let short = peer_adv(t(0), DEFAULT_LIFETIME);
        let mut long = short.clone();
        long.name = "a-very-long-hostname.with.many.labels.example.org".into();
        assert!(long.wire_size() > short.wire_size());
    }

    #[test]
    fn pipe_and_content_adverts_expire() {
        let mut g = IdGenerator::new(2);
        let pipe = PipeAdvertisement {
            pipe: PipeId::generate(&mut g),
            owner: PeerId::generate(&mut g),
            name: "task-service".into(),
            published: t(0),
            lifetime: SimDuration::from_secs(10),
        };
        assert!(pipe.is_expired(t(11)));
        assert!(pipe.wire_size() > 0);
        let content = ContentAdvertisement {
            content: ContentId::generate(&mut g),
            owner: PeerId::generate(&mut g),
            name: "lecture.mp4".into(),
            size_bytes: 100 << 20,
            published: t(0),
            lifetime: DEFAULT_LIFETIME,
        };
        assert!(!content.is_expired(t(3600)));
        assert!(content.wire_size() > 0);
    }
}
