//! The scripted command schedule: deferred [`BrokerCommand`]s, their
//! wait-for-peers retry budget, and the instant each command first came
//! due (so queueing delay is attributed to the command, not the retries).

use std::collections::HashMap;

use netsim::engine::Context;
use netsim::time::{SimDuration, SimTime};

use crate::message::OverlayMsg;

use netsim::node::NodeId;

use super::{Broker, BrokerCommand, TargetSpec, CMD_MAX_RETRIES, CMD_RETRY_DELAY, CMD_TAG_BASE};

/// The broker's command script plus the per-command deferral state.
pub(crate) struct CommandSchedule {
    commands: Vec<(SimDuration, BrokerCommand)>,
    /// Whether each command has executed (makes `mark_executed` idempotent
    /// under stale duplicate timers).
    executed: Vec<bool>,
    /// Commands withdrawn before execution (e.g. their target departed).
    cancelled: Vec<bool>,
    /// Wait-for-peers retries consumed, by command timer tag.
    retries: HashMap<u64, u32>,
    /// When each command first came due, by command timer tag. Kept across
    /// deferrals so the eventual execution knows its true enqueue instant.
    first_due: HashMap<u64, SimTime>,
    /// Commands not yet executed or cancelled (drives idle detection).
    pending: usize,
}

impl CommandSchedule {
    pub(crate) fn new(commands: Vec<(SimDuration, BrokerCommand)>) -> Self {
        CommandSchedule {
            pending: commands.len(),
            executed: vec![false; commands.len()],
            cancelled: vec![false; commands.len()],
            commands,
            retries: HashMap::new(),
            first_due: HashMap::new(),
        }
    }

    /// Commands that have not executed yet.
    pub(crate) fn pending(&self) -> usize {
        self.pending
    }

    /// The initial `(index, delay)` pairs to arm timers for at start-up.
    pub(crate) fn delays(&self) -> Vec<(usize, SimDuration)> {
        self.commands
            .iter()
            .enumerate()
            .map(|(i, (delay, _cmd))| (i, *delay))
            .collect()
    }

    /// The scheduled command at `idx`, if any.
    pub(crate) fn command(&self, idx: usize) -> Option<BrokerCommand> {
        self.commands.get(idx).map(|(_, cmd)| cmd.clone())
    }

    /// Records (idempotently) when the command behind `tag` first came due
    /// and returns that instant.
    pub(crate) fn note_first_due(&mut self, tag: u64, now: SimTime) -> SimTime {
        *self.first_due.entry(tag).or_insert(now)
    }

    /// Consumes one wait-for-peers retry for `tag`. Returns `true` while
    /// budget remains (caller reschedules), `false` once exhausted (caller
    /// executes regardless).
    pub(crate) fn defer(&mut self, tag: u64) -> bool {
        let retries = self.retries.entry(tag).or_insert(0);
        if *retries < CMD_MAX_RETRIES {
            *retries += 1;
            true
        } else {
            false
        }
    }

    /// Marks the command behind `tag` executed. Idempotent: a stale
    /// duplicate timer neither double-counts nor resurrects the command.
    pub(crate) fn mark_executed(&mut self, tag: u64) {
        let idx = (tag - CMD_TAG_BASE) as usize;
        if idx >= self.executed.len() || self.executed[idx] || self.cancelled[idx] {
            return;
        }
        self.executed[idx] = true;
        self.first_due.remove(&tag);
        self.pending = self.pending.saturating_sub(1);
    }

    /// Whether the command behind `tag` has been withdrawn.
    pub(crate) fn is_cancelled(&self, tag: u64) -> bool {
        let idx = (tag - CMD_TAG_BASE) as usize;
        self.cancelled.get(idx).copied().unwrap_or(false)
    }

    /// Withdraws every not-yet-executed command whose explicit target is
    /// `node` (a departed host must not receive deferred work). Returns
    /// how many commands were cancelled.
    pub(crate) fn cancel_for_node(&mut self, node: NodeId) -> usize {
        let mut cancelled = 0;
        for (idx, (_, cmd)) in self.commands.iter().enumerate() {
            if self.executed[idx] || self.cancelled[idx] {
                continue;
            }
            let target = match cmd {
                BrokerCommand::DistributeFile { target, .. }
                | BrokerCommand::SubmitTask { target, .. }
                | BrokerCommand::SendInstant { target, .. } => target,
            };
            if *target == TargetSpec::Node(node) {
                self.cancelled[idx] = true;
                self.first_due.remove(&(CMD_TAG_BASE + idx as u64));
                self.pending = self.pending.saturating_sub(1);
                cancelled += 1;
            }
        }
        cancelled
    }
}

impl Broker {
    pub(crate) fn on_command_due(&mut self, ctx: &mut Context<OverlayMsg>, tag: u64) {
        let idx = (tag - CMD_TAG_BASE) as usize;
        let Some(cmd) = self.schedule.command(idx) else {
            return;
        };
        if self.schedule.is_cancelled(tag) {
            // Withdrawn while deferred (its target departed): drop silently
            // and let idle detection account for the vanished command.
            self.maybe_stop(ctx);
            return;
        }
        let now = ctx.now();
        let enqueued_at = self.schedule.note_first_due(tag, now);
        // Commands that need clients must wait until someone has joined —
        // unless the federation can take the petition off this broker's
        // hands, in which case executing now forwards it instead.
        let needs_peers = !matches!(cmd, BrokerCommand::SendInstant { .. });
        if needs_peers
            && self.registry.is_empty()
            && !self.can_forward(&cmd)
            && self.schedule.defer(tag)
        {
            ctx.schedule_timer(CMD_RETRY_DELAY, tag);
            return;
        }
        self.schedule.mark_executed(tag);
        self.execute_command(ctx, cmd, enqueued_at);
        self.maybe_stop(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::TargetSpec;

    fn instant(text: &str) -> BrokerCommand {
        BrokerCommand::SendInstant {
            target: TargetSpec::AllClients,
            text: text.to_string(),
        }
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn first_due_is_stamped_once_across_deferrals() {
        let mut s = CommandSchedule::new(vec![(SimDuration::from_secs(1), instant("a"))]);
        let tag = CMD_TAG_BASE;
        assert_eq!(s.note_first_due(tag, t(1)), t(1));
        // Later retries must keep reporting the original due instant.
        assert_eq!(s.note_first_due(tag, t(5)), t(1));
        s.mark_executed(tag);
        // After execution the slate is clean (a re-fired tag re-stamps).
        assert_eq!(s.note_first_due(tag, t(9)), t(9));
    }

    #[test]
    fn pending_counts_down_and_saturates() {
        let mut s = CommandSchedule::new(vec![
            (SimDuration::from_secs(1), instant("a")),
            (SimDuration::from_secs(2), instant("b")),
        ]);
        assert_eq!(s.pending(), 2);
        assert_eq!(
            s.delays(),
            vec![
                (0, SimDuration::from_secs(1)),
                (1, SimDuration::from_secs(2))
            ]
        );
        s.mark_executed(CMD_TAG_BASE);
        s.mark_executed(CMD_TAG_BASE + 1);
        s.mark_executed(CMD_TAG_BASE + 1); // stale duplicate
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn defer_budget_exhausts_at_cmd_max_retries() {
        let mut s = CommandSchedule::new(vec![(SimDuration::ZERO, instant("a"))]);
        let tag = CMD_TAG_BASE;
        for _ in 0..CMD_MAX_RETRIES {
            assert!(s.defer(tag), "budget remains");
        }
        assert!(!s.defer(tag), "budget exhausted: execute regardless");
        assert!(!s.defer(tag), "stays exhausted");
    }

    #[test]
    fn command_lookup_is_positional_and_cloned() {
        let s = CommandSchedule::new(vec![(SimDuration::ZERO, instant("a"))]);
        assert_eq!(s.command(0), Some(instant("a")));
        assert_eq!(s.command(1), None);
    }

    fn to_node(node: u32, text: &str) -> BrokerCommand {
        BrokerCommand::SendInstant {
            target: TargetSpec::Node(netsim::node::NodeId(node)),
            text: text.to_string(),
        }
    }

    #[test]
    fn cancel_for_node_withdraws_only_matching_pending_commands() {
        let mut s = CommandSchedule::new(vec![
            (SimDuration::ZERO, to_node(3, "a")),
            (SimDuration::ZERO, to_node(5, "b")),
            (SimDuration::ZERO, to_node(3, "c")),
            (SimDuration::ZERO, instant("broadcast")),
        ]);
        s.mark_executed(CMD_TAG_BASE); // "a" already ran
        assert_eq!(s.pending(), 3);
        assert_eq!(s.cancel_for_node(netsim::node::NodeId(3)), 1, "only c");
        assert!(s.is_cancelled(CMD_TAG_BASE + 2));
        assert!(!s.is_cancelled(CMD_TAG_BASE + 1));
        assert!(!s.is_cancelled(CMD_TAG_BASE + 3), "broadcasts survive");
        assert_eq!(s.pending(), 2);
        // A stale timer for the cancelled command cannot resurrect it.
        s.mark_executed(CMD_TAG_BASE + 2);
        assert_eq!(s.pending(), 2);
        // Cancelling again finds nothing.
        assert_eq!(s.cancel_for_node(netsim::node::NodeId(3)), 0);
    }
}
