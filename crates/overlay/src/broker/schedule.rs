//! The scripted command schedule: deferred [`BrokerCommand`]s, their
//! wait-for-peers retry budget, and the instant each command first came
//! due (so queueing delay is attributed to the command, not the retries).

use std::collections::HashMap;

use netsim::engine::Context;
use netsim::time::{SimDuration, SimTime};

use crate::message::OverlayMsg;

use super::{Broker, BrokerCommand, CMD_MAX_RETRIES, CMD_RETRY_DELAY, CMD_TAG_BASE};

/// The broker's command script plus the per-command deferral state.
pub(crate) struct CommandSchedule {
    commands: Vec<(SimDuration, BrokerCommand)>,
    /// Wait-for-peers retries consumed, by command timer tag.
    retries: HashMap<u64, u32>,
    /// When each command first came due, by command timer tag. Kept across
    /// deferrals so the eventual execution knows its true enqueue instant.
    first_due: HashMap<u64, SimTime>,
    /// Commands not yet executed (drives idle detection).
    pending: usize,
}

impl CommandSchedule {
    pub(crate) fn new(commands: Vec<(SimDuration, BrokerCommand)>) -> Self {
        CommandSchedule {
            pending: commands.len(),
            commands,
            retries: HashMap::new(),
            first_due: HashMap::new(),
        }
    }

    /// Commands that have not executed yet.
    pub(crate) fn pending(&self) -> usize {
        self.pending
    }

    /// The initial `(index, delay)` pairs to arm timers for at start-up.
    pub(crate) fn delays(&self) -> Vec<(usize, SimDuration)> {
        self.commands
            .iter()
            .enumerate()
            .map(|(i, (delay, _cmd))| (i, *delay))
            .collect()
    }

    /// The scheduled command at `idx`, if any.
    pub(crate) fn command(&self, idx: usize) -> Option<BrokerCommand> {
        self.commands.get(idx).map(|(_, cmd)| cmd.clone())
    }

    /// Records (idempotently) when the command behind `tag` first came due
    /// and returns that instant.
    pub(crate) fn note_first_due(&mut self, tag: u64, now: SimTime) -> SimTime {
        *self.first_due.entry(tag).or_insert(now)
    }

    /// Consumes one wait-for-peers retry for `tag`. Returns `true` while
    /// budget remains (caller reschedules), `false` once exhausted (caller
    /// executes regardless).
    pub(crate) fn defer(&mut self, tag: u64) -> bool {
        let retries = self.retries.entry(tag).or_insert(0);
        if *retries < CMD_MAX_RETRIES {
            *retries += 1;
            true
        } else {
            false
        }
    }

    /// Marks the command behind `tag` executed.
    pub(crate) fn mark_executed(&mut self, tag: u64) {
        self.first_due.remove(&tag);
        self.pending = self.pending.saturating_sub(1);
    }
}

impl Broker {
    pub(crate) fn on_command_due(&mut self, ctx: &mut Context<OverlayMsg>, tag: u64) {
        let idx = (tag - CMD_TAG_BASE) as usize;
        let Some(cmd) = self.schedule.command(idx) else {
            return;
        };
        let now = ctx.now();
        let enqueued_at = self.schedule.note_first_due(tag, now);
        // Commands that need clients must wait until someone has joined.
        let needs_peers = !matches!(cmd, BrokerCommand::SendInstant { .. });
        if needs_peers && self.registry.is_empty() && self.schedule.defer(tag) {
            ctx.schedule_timer(CMD_RETRY_DELAY, tag);
            return;
        }
        self.schedule.mark_executed(tag);
        self.execute_command(ctx, cmd, enqueued_at);
        self.maybe_stop(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::TargetSpec;

    fn instant(text: &str) -> BrokerCommand {
        BrokerCommand::SendInstant {
            target: TargetSpec::AllClients,
            text: text.to_string(),
        }
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn first_due_is_stamped_once_across_deferrals() {
        let mut s = CommandSchedule::new(vec![(SimDuration::from_secs(1), instant("a"))]);
        let tag = CMD_TAG_BASE;
        assert_eq!(s.note_first_due(tag, t(1)), t(1));
        // Later retries must keep reporting the original due instant.
        assert_eq!(s.note_first_due(tag, t(5)), t(1));
        s.mark_executed(tag);
        // After execution the slate is clean (a re-fired tag re-stamps).
        assert_eq!(s.note_first_due(tag, t(9)), t(9));
    }

    #[test]
    fn pending_counts_down_and_saturates() {
        let mut s = CommandSchedule::new(vec![
            (SimDuration::from_secs(1), instant("a")),
            (SimDuration::from_secs(2), instant("b")),
        ]);
        assert_eq!(s.pending(), 2);
        assert_eq!(
            s.delays(),
            vec![
                (0, SimDuration::from_secs(1)),
                (1, SimDuration::from_secs(2))
            ]
        );
        s.mark_executed(CMD_TAG_BASE);
        s.mark_executed(CMD_TAG_BASE + 1);
        s.mark_executed(CMD_TAG_BASE + 1); // stale duplicate
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn defer_budget_exhausts_at_cmd_max_retries() {
        let mut s = CommandSchedule::new(vec![(SimDuration::ZERO, instant("a"))]);
        let tag = CMD_TAG_BASE;
        for _ in 0..CMD_MAX_RETRIES {
            assert!(s.defer(tag), "budget remains");
        }
        assert!(!s.defer(tag), "budget exhausted: execute regardless");
        assert!(!s.defer(tag), "stays exhausted");
    }

    #[test]
    fn command_lookup_is_positional_and_cloned() {
        let s = CommandSchedule::new(vec![(SimDuration::ZERO, instant("a"))]);
        assert_eq!(s.command(0), Some(instant("a")));
        assert_eq!(s.command(1), None);
    }
}
