//! The retry engine: retransmission probes for lossy transports plus the
//! transfer and task watchdogs.
//!
//! [`RetryEngine`] is purely a tag allocator and probe/watchdog table — it
//! never touches the engine, so arming returns a tag for the caller to
//! schedule and firing is `take_*` + caller-side effects. That keeps the
//! tables unit-testable without a simulation.

use std::collections::HashMap;

use netsim::engine::Context;
use netsim::trace::TraceEventKind;

use crate::filetransfer::{OutboundTransfer, TransferPhase};
use crate::id::{TaskId, TransferId};
use crate::message::OverlayMsg;
use crate::task::TaskPhase;

use super::{Broker, RETRY_TAG_BASE, TASK_WATCHDOG_TAG_BASE, WATCHDOG_TAG_BASE};

/// What a retransmission probe is waiting on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum RetryKind {
    /// The petition ack.
    Petition,
    /// The confirm for the in-flight part.
    Part {
        /// Index of the part awaiting its confirm.
        index: u32,
        /// Size of that part in bytes (for the retransmission).
        size: u64,
    },
}

impl RetryKind {
    /// Whether the transfer is still stalled on the message this probe
    /// guards — i.e. the answer has not arrived and a retransmission is
    /// warranted. A transfer that has moved on makes the probe a no-op.
    pub(crate) fn stalls(&self, outbound: &OutboundTransfer) -> bool {
        match *self {
            RetryKind::Petition => outbound.phase == TransferPhase::AwaitingPetitionAck,
            RetryKind::Part { index, .. } => {
                outbound.phase == TransferPhase::Sending && outbound.next_part == index + 1
            }
        }
    }
}

/// One armed retransmission probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RetryProbe {
    pub(crate) transfer: TransferId,
    pub(crate) kind: RetryKind,
    /// Send attempts so far (1 = the original send).
    pub(crate) attempt: u32,
}

/// Tag allocation and lookup tables for probes and watchdogs.
pub(crate) struct RetryEngine {
    probes: HashMap<u64, RetryProbe>,
    next_retry_tag: u64,
    watchdog_for: HashMap<u64, TransferId>,
    next_watchdog_tag: u64,
    task_watchdog_for: HashMap<u64, TaskId>,
    next_task_watchdog_tag: u64,
}

impl RetryEngine {
    pub(crate) fn new() -> Self {
        RetryEngine {
            probes: HashMap::new(),
            next_retry_tag: RETRY_TAG_BASE,
            watchdog_for: HashMap::new(),
            next_watchdog_tag: WATCHDOG_TAG_BASE,
            task_watchdog_for: HashMap::new(),
            next_task_watchdog_tag: TASK_WATCHDOG_TAG_BASE,
        }
    }

    /// Drops every armed probe and watchdog while **keeping** the tag
    /// counters: the broker-crash path. Timers armed before the crash
    /// still fire with their old tags, so a reset of the counters would
    /// let a post-restart probe collide with a pre-crash timer; advancing
    /// counters make every stale tag a harmless `take_* → None`.
    pub(crate) fn clear(&mut self) {
        self.probes.clear();
        self.watchdog_for.clear();
        self.task_watchdog_for.clear();
    }

    /// Registers a retransmission probe and returns its timer tag.
    pub(crate) fn arm_probe(&mut self, transfer: TransferId, kind: RetryKind, attempt: u32) -> u64 {
        let tag = self.next_retry_tag;
        self.next_retry_tag += 1;
        self.probes.insert(
            tag,
            RetryProbe {
                transfer,
                kind,
                attempt,
            },
        );
        tag
    }

    /// Claims the probe behind a fired retry timer (`None` = stale tag).
    pub(crate) fn take_probe(&mut self, tag: u64) -> Option<RetryProbe> {
        self.probes.remove(&tag)
    }

    /// Registers a transfer watchdog and returns its timer tag.
    pub(crate) fn arm_watchdog(&mut self, transfer: TransferId) -> u64 {
        let tag = self.next_watchdog_tag;
        self.next_watchdog_tag += 1;
        self.watchdog_for.insert(tag, transfer);
        tag
    }

    /// Claims the transfer behind a fired watchdog (`None` = stale tag).
    pub(crate) fn take_watchdog(&mut self, tag: u64) -> Option<TransferId> {
        self.watchdog_for.remove(&tag)
    }

    /// Registers a task watchdog and returns its timer tag.
    pub(crate) fn arm_task_watchdog(&mut self, task: TaskId) -> u64 {
        let tag = self.next_task_watchdog_tag;
        self.next_task_watchdog_tag += 1;
        self.task_watchdog_for.insert(tag, task);
        tag
    }

    /// Claims the task behind a fired task watchdog (`None` = stale tag).
    pub(crate) fn take_task_watchdog(&mut self, tag: u64) -> Option<TaskId> {
        self.task_watchdog_for.remove(&tag)
    }
}

impl Broker {
    /// Arms a retransmission probe for the given message, when a retry
    /// policy is configured.
    pub(crate) fn arm_retry(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        transfer: TransferId,
        kind: RetryKind,
        attempt: u32,
    ) {
        let Some(policy) = self.cfg.retry else {
            return;
        };
        let tag = self.retries.arm_probe(transfer, kind, attempt);
        ctx.schedule_timer(policy.timeout, tag);
    }

    pub(crate) fn on_retry_timer(&mut self, ctx: &mut Context<OverlayMsg>, tag: u64) {
        let Some(probe) = self.retries.take_probe(tag) else {
            return;
        };
        let Some(outbound) = self.transfers.flows.get(probe.transfer) else {
            return; // transfer already finished
        };
        if !probe.kind.stalls(outbound) {
            return;
        }
        let max = self.cfg.retry.map(|p| p.max_attempts).unwrap_or(1);
        if probe.attempt >= max {
            self.transfers.flows.cancel(probe.transfer);
            self.bump(ctx, |c| c.retries_exhausted);
            self.finish_transfer(ctx, probe.transfer, false);
            return;
        }
        let to = outbound.to;
        if ctx.trace_enabled() {
            ctx.trace_event(TraceEventKind::Retransmission {
                transfer: probe.transfer.raw(),
                part: match probe.kind {
                    RetryKind::Petition => None,
                    RetryKind::Part { index, .. } => Some(index),
                },
                attempt: probe.attempt + 1,
            });
        }
        match probe.kind {
            RetryKind::Petition => {
                let file = outbound.file.clone();
                let num_parts = outbound.num_parts();
                let sent_at = outbound.petition_sent_at;
                ctx.send(
                    to,
                    OverlayMsg::FilePetition {
                        transfer: probe.transfer,
                        file,
                        num_parts,
                        sent_at,
                    },
                );
            }
            RetryKind::Part { index, size } => {
                ctx.send(
                    to,
                    OverlayMsg::FilePart {
                        transfer: probe.transfer,
                        index,
                        size,
                    },
                );
            }
        }
        self.bump(ctx, |c| c.retransmissions);
        self.arm_retry(ctx, probe.transfer, probe.kind, probe.attempt + 1);
    }

    pub(crate) fn on_task_watchdog(&mut self, ctx: &mut Context<OverlayMsg>, tag: u64) {
        if let Some(task_id) = self.retries.take_task_watchdog(tag) {
            let unfinished = self
                .tasks
                .tasks
                .get(&task_id)
                .map(|t| !matches!(t.phase, TaskPhase::Completed | TaskPhase::Failed))
                .unwrap_or(false);
            if unfinished {
                self.bump(ctx, |c| c.tasks_timed_out);
                self.fail_task(ctx, task_id);
            }
        }
    }

    pub(crate) fn on_transfer_watchdog(&mut self, ctx: &mut Context<OverlayMsg>, tag: u64) {
        if let Some(transfer) = self.retries.take_watchdog(tag) {
            let still_running = self
                .transfers
                .flows
                .get(transfer)
                .map(|t| !t.is_complete())
                .unwrap_or(false);
            if still_running {
                if ctx.trace_enabled() {
                    ctx.trace_event(TraceEventKind::WatchdogFired {
                        transfer: transfer.raw(),
                    });
                }
                self.transfers.flows.cancel(transfer);
                self.finish_transfer(ctx, transfer, false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filetransfer::FileMeta;
    use crate::id::{ContentId, IdGenerator};
    use netsim::node::NodeId;
    use netsim::time::SimTime;

    fn outbound(parts: u32) -> OutboundTransfer {
        let mut ids = IdGenerator::new(7);
        let file = FileMeta {
            content: ContentId::generate(&mut ids),
            name: "f".to_string(),
            size_bytes: 8 << 20,
        };
        OutboundTransfer::new(
            TransferId::generate(&mut ids),
            file,
            NodeId(2),
            parts,
            SimTime::ZERO,
        )
    }

    #[test]
    fn tags_are_monotone_and_namespaced() {
        let mut ids = IdGenerator::new(9);
        let mut eng = RetryEngine::new();
        let t = TransferId::generate(&mut ids);
        let p0 = eng.arm_probe(t, RetryKind::Petition, 1);
        let p1 = eng.arm_probe(t, RetryKind::Petition, 2);
        assert_eq!(p0, RETRY_TAG_BASE);
        assert_eq!(p1, RETRY_TAG_BASE + 1);
        let w = eng.arm_watchdog(t);
        assert_eq!(w, WATCHDOG_TAG_BASE);
        let task = TaskId::generate(&mut ids);
        let tw = eng.arm_task_watchdog(task);
        assert_eq!(tw, TASK_WATCHDOG_TAG_BASE);
    }

    #[test]
    fn take_is_claim_once() {
        let mut ids = IdGenerator::new(10);
        let mut eng = RetryEngine::new();
        let t = TransferId::generate(&mut ids);
        let tag = eng.arm_probe(t, RetryKind::Part { index: 3, size: 64 }, 2);
        let probe = eng.take_probe(tag).expect("armed");
        assert_eq!(probe.attempt, 2);
        assert_eq!(probe.kind, RetryKind::Part { index: 3, size: 64 });
        assert_eq!(eng.take_probe(tag), None, "second fire is stale");

        let w = eng.arm_watchdog(t);
        assert_eq!(eng.take_watchdog(w), Some(t));
        assert_eq!(eng.take_watchdog(w), None);
    }

    #[test]
    fn petition_probe_stalls_only_before_the_ack() {
        let mut t = outbound(4);
        assert!(RetryKind::Petition.stalls(&t), "awaiting ack → stalled");
        t.on_petition_ack(true);
        assert!(!RetryKind::Petition.stalls(&t), "ack arrived → moved on");
    }

    #[test]
    fn part_probe_stalls_only_while_its_part_is_in_flight() {
        let mut t = outbound(4);
        t.on_petition_ack(true); // part 0 in flight
        let probe0 = RetryKind::Part { index: 0, size: 1 };
        let probe1 = RetryKind::Part { index: 1, size: 1 };
        assert!(probe0.stalls(&t), "part 0 unconfirmed");
        assert!(!probe1.stalls(&t), "part 1 not sent yet");
        t.on_part_confirm(0); // window advances: part 1 in flight
        assert!(!probe0.stalls(&t), "part 0 confirmed → stale probe");
        assert!(probe1.stalls(&t), "part 1 now the in-flight one");
    }

    #[test]
    fn cancelled_transfers_never_stall() {
        let mut t = outbound(2);
        t.on_petition_ack(true);
        t.cancel();
        assert!(!RetryKind::Petition.stalls(&t));
        assert!(!RetryKind::Part { index: 0, size: 1 }.stalls(&t));
    }
}
