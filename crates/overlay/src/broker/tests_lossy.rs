//! Broker tests under loss, watchdogs, and hostile receivers.

use super::*;
use crate::advertisement::PeerAdvertisement;
use crate::client::{ClientConfig, SimpleClient};
use crate::id::PeerId;
use netsim::link::{AccessLink, PathSpec};
use netsim::node::NodeSpec;
use netsim::prelude::*;

/// Star with a lossy transport and optional retry policy.
fn lossy_star(
    drop_p: f64,
    retry: Option<RetryPolicy>,
    timeout: SimDuration,
) -> (Engine<OverlayMsg>, RecordSink) {
    let mut topo = Topology::new();
    let broker_node = topo.add_node(
        NodeSpec::responsive("broker"),
        AccessLink::symmetric_mbps(80.0, 0.0001),
    );
    let c = topo.add_node(
        NodeSpec::responsive("client"),
        AccessLink::symmetric_mbps(8.0, 0.0003),
    );
    topo.set_path_symmetric(broker_node, c, PathSpec::from_owd_ms(20.0, 0.0));
    let sink = RecordSink::new();
    let transport = TransportConfig {
        message_drop_probability: drop_p,
        ..TransportConfig::default()
    };
    let mut engine = Engine::new(topo, transport, 1234);
    let mut bcfg = BrokerConfig::new(51).at(
        SimDuration::from_secs(1),
        BrokerCommand::DistributeFile {
            target: TargetSpec::AllClients,
            size_bytes: 8 << 20,
            num_parts: 16,
            label: "lossy".into(),
        },
    );
    bcfg.retry = retry;
    bcfg.transfer_timeout = timeout;
    engine.register(broker_node, Box::new(Broker::new(bcfg, sink.clone())));
    engine.register(
        c,
        Box::new(SimpleClient::new(ClientConfig::new(broker_node), 99)),
    );
    (engine, sink)
}

#[test]
fn retransmission_completes_transfers_on_lossy_networks() {
    // 10% whole-message loss: a 16-part stop-and-wait transfer has
    // ~97% chance of losing at least one message; retries recover it.
    let (mut engine, sink) = lossy_star(
        0.10,
        Some(RetryPolicy {
            timeout: SimDuration::from_secs(20),
            max_attempts: 8,
        }),
        SimDuration::from_mins(60),
    );
    engine.run_until(SimTime::from_secs_f64(3600.0));
    assert!(
        engine.metrics().counter("net.messages_lost") > 0,
        "loss occurred"
    );
    assert!(
        engine.metrics().counter("overlay.retransmissions") > 0,
        "retries fired"
    );
    let log = sink.drain();
    assert_eq!(log.transfers.len(), 1);
    assert!(
        log.transfers[0].completed_at.is_some(),
        "transfer must complete despite loss"
    );
    // Every byte arrived exactly once despite duplicates on the wire.
    let sent: u64 = log.transfers[0].parts.iter().map(|p| p.size).sum();
    assert_eq!(sent, 8 << 20);
}

#[test]
fn without_retries_loss_stalls_and_watchdog_cancels() {
    let (mut engine, sink) = lossy_star(0.10, None, SimDuration::from_secs(120));
    engine.run_until(SimTime::from_secs_f64(3600.0));
    let log = sink.drain();
    assert_eq!(log.transfers.len(), 1);
    assert!(
        log.transfers[0].cancelled,
        "a lost message stalls stop-and-wait; the watchdog cancels"
    );
}

#[test]
fn retries_exhaust_and_cancel_cleanly() {
    // 100% loss after the join (drop only applies between distinct
    // nodes, and the join itself may be lost — use a huge drop rate and
    // verify the run terminates with a cancelled or absent transfer).
    let (mut engine, sink) = lossy_star(
        0.9,
        Some(RetryPolicy {
            timeout: SimDuration::from_secs(5),
            max_attempts: 3,
        }),
        SimDuration::from_mins(30),
    );
    engine.run_until(SimTime::from_secs_f64(7200.0));
    let log = sink.drain();
    for t in &log.transfers {
        assert!(
            t.completed_at.is_some() || t.cancelled,
            "no transfer may dangle"
        );
    }
}

#[test]
fn watchdog_cancels_stuck_transfers() {
    let mut topo = Topology::new();
    let broker_node = topo.add_node(
        NodeSpec::responsive("broker"),
        AccessLink::symmetric_mbps(80.0, 0.0001),
    );
    // Pathologically slow client link: the transfer cannot finish
    // within the watchdog timeout.
    let c = topo.add_node(
        NodeSpec::responsive("slow"),
        AccessLink::symmetric_mbps(0.001, 0.01),
    );
    topo.set_path_symmetric(broker_node, c, PathSpec::from_owd_ms(150.0, 0.0));
    let sink = RecordSink::new();
    let mut engine = Engine::new(topo, TransportConfig::default(), 6);
    let mut bcfg = BrokerConfig::new(15).at(
        SimDuration::from_secs(1),
        BrokerCommand::DistributeFile {
            target: TargetSpec::AllClients,
            size_bytes: 200 << 20,
            num_parts: 2,
            label: "stuck".into(),
        },
    );
    bcfg.transfer_timeout = SimDuration::from_secs(60);
    engine.register(broker_node, Box::new(Broker::new(bcfg, sink.clone())));
    engine.register(
        c,
        Box::new(SimpleClient::new(ClientConfig::new(broker_node), 44)),
    );
    engine.run_until(SimTime::from_secs_f64(7200.0));
    let log = sink.drain();
    assert_eq!(log.transfers.len(), 1);
    assert!(log.transfers[0].cancelled, "watchdog should cancel");
}

/// A hostile receiver that confirms every part twice. The duplicate
/// confirm arrives after the sender has already advanced its window;
/// before the first-confirm-wins fix the broker stamped `confirmed_at`
/// prior to validating the confirm, so the duplicate dragged the
/// milestone forward — past the next part's send instant, and past
/// `completed_at` for the final part (inflating `last_part_secs`).
struct DoubleConfirmClient {
    peer: PeerId,
    broker: NodeId,
}

impl Actor<OverlayMsg> for DoubleConfirmClient {
    fn on_start(&mut self, ctx: &mut Context<OverlayMsg>) {
        let adv = PeerAdvertisement {
            peer: self.peer,
            node: ctx.self_id(),
            name: ctx.node_name(ctx.self_id()).to_string(),
            cpu_gops: 1.0,
            accepts_tasks: false,
            published: ctx.now(),
            lifetime: crate::advertisement::DEFAULT_LIFETIME,
        };
        ctx.send(self.broker, OverlayMsg::Join(adv));
    }

    fn on_message(&mut self, ctx: &mut Context<OverlayMsg>, from: NodeId, msg: OverlayMsg) {
        match msg {
            OverlayMsg::FilePetition {
                transfer, sent_at, ..
            } => {
                ctx.send(
                    from,
                    OverlayMsg::PetitionAck {
                        transfer,
                        accepted: true,
                        petition_sent_at: sent_at,
                        handled_at: ctx.now(),
                    },
                );
            }
            OverlayMsg::FilePart {
                transfer, index, ..
            } => {
                ctx.send(from, OverlayMsg::PartConfirm { transfer, index });
                ctx.send(from, OverlayMsg::PartConfirm { transfer, index });
            }
            _ => {}
        }
    }
}

#[test]
fn duplicate_confirms_do_not_move_part_milestones() {
    let mut topo = Topology::new();
    let broker_node = topo.add_node(
        NodeSpec::responsive("broker"),
        AccessLink::symmetric_mbps(80.0, 0.0001),
    );
    let c = topo.add_node(
        NodeSpec::responsive("doubler"),
        AccessLink::symmetric_mbps(8.0, 0.0003),
    );
    topo.set_path_symmetric(broker_node, c, PathSpec::from_owd_ms(20.0, 0.0));
    let sink = RecordSink::new();
    let mut engine = Engine::new(topo, TransportConfig::default(), 17);
    let bcfg = BrokerConfig::new(61).at(
        SimDuration::from_secs(1),
        BrokerCommand::DistributeFile {
            target: TargetSpec::AllClients,
            size_bytes: 4 << 20,
            num_parts: 4,
            label: "dup".into(),
        },
    );
    engine.register(broker_node, Box::new(Broker::new(bcfg, sink.clone())));
    let mut ids = IdGenerator::new(7);
    engine.register(
        c,
        Box::new(DoubleConfirmClient {
            peer: PeerId::generate(&mut ids),
            broker: broker_node,
        }),
    );
    engine.run_until(SimTime::from_secs_f64(3600.0));
    let log = sink.drain();
    assert_eq!(log.transfers.len(), 1);
    let rec = &log.transfers[0];
    let completed = rec.completed_at.expect("transfer completes");
    assert_eq!(rec.parts.len(), 4);
    for pair in rec.parts.windows(2) {
        let confirmed = pair[0].confirmed_at.expect("confirmed");
        assert!(
            confirmed <= pair[1].sent_at,
            "part {} confirm ({:?}) must not postdate part {} send ({:?})",
            pair[0].index,
            confirmed,
            pair[1].index,
            pair[1].sent_at,
        );
    }
    let last = rec.parts.last().unwrap();
    assert!(
        last.confirmed_at.unwrap() <= completed,
        "last confirm must not postdate completion (first-confirm-wins)"
    );
    assert_eq!(
        last.confirmed_at,
        Some(completed),
        "completion is stamped at the accepted (first) confirm"
    );
    assert!(rec.last_part_secs().unwrap() > 0.0);
}

#[test]
fn lossy_retransmissions_keep_first_confirm_milestones() {
    // Lossy network + retries ⇒ duplicate parts and duplicate confirms
    // on the wire. First-confirm-wins must keep per-part milestones
    // causally ordered: each confirm at or before the next part's send.
    let (mut engine, sink) = lossy_star(
        0.10,
        Some(RetryPolicy {
            timeout: SimDuration::from_secs(20),
            max_attempts: 8,
        }),
        SimDuration::from_mins(60),
    );
    engine.run_until(SimTime::from_secs_f64(3600.0));
    let log = sink.drain();
    assert_eq!(log.transfers.len(), 1);
    let rec = &log.transfers[0];
    assert!(rec.completed_at.is_some(), "transfer completes under loss");
    for p in &rec.parts {
        let confirmed = p.confirmed_at.expect("every part confirmed");
        assert!(confirmed >= p.sent_at, "confirm cannot precede send");
    }
    for pair in rec.parts.windows(2) {
        assert!(
            pair[0].confirmed_at.unwrap() <= pair[1].sent_at,
            "stale duplicate confirm moved part {} milestone",
            pair[0].index
        );
        assert!(pair[0].index < pair[1].index, "indices strictly increase");
    }
}
