//! Pre-resolved protocol counters (the broker's milestone accounting).

use netsim::engine::Context;
use netsim::metrics::{MetricId, Metrics};

use crate::message::OverlayMsg;

use super::Broker;

/// Pre-resolved handles for the broker's protocol counters, interned once
/// per run (see [`Metrics::counter_id`]) so milestone accounting on busy
/// paths never re-walks the metric name map.
pub(crate) struct BrokerCounters {
    pub(crate) transfers_started: MetricId,
    pub(crate) transfers_completed: MetricId,
    pub(crate) transfers_cancelled: MetricId,
    pub(crate) tasks_submitted: MetricId,
    pub(crate) tasks_completed: MetricId,
    pub(crate) tasks_failed: MetricId,
    pub(crate) tasks_timed_out: MetricId,
    pub(crate) joins: MetricId,
    pub(crate) content_published: MetricId,
    pub(crate) file_requests_served: MetricId,
    pub(crate) file_requests_unserved: MetricId,
    pub(crate) jobs_unplaced: MetricId,
    pub(crate) gossip_received: MetricId,
    pub(crate) retransmissions: MetricId,
    pub(crate) retries_exhausted: MetricId,
    /// Gossiped views rejected at admission: already first-hand, host
    /// shadowed, or a stale echo of a departed peer.
    pub(crate) stale_views_dropped: MetricId,
    /// Petitions this broker handed to a fellow broker (no local candidate).
    pub(crate) petitions_forwarded: MetricId,
    /// Forwarded petitions that arrived from fellow brokers.
    pub(crate) forwards_received: MetricId,
    /// Forwarded petitions this broker could serve from its own registry.
    pub(crate) forwards_served: MetricId,
    /// Forwarded petitions dropped with the hop budget exhausted.
    pub(crate) forwards_exhausted: MetricId,
}

impl BrokerCounters {
    pub(crate) fn resolve(metrics: &mut Metrics) -> Self {
        BrokerCounters {
            transfers_started: metrics.counter_id("overlay.transfers_started"),
            transfers_completed: metrics.counter_id("overlay.transfers_completed"),
            transfers_cancelled: metrics.counter_id("overlay.transfers_cancelled"),
            tasks_submitted: metrics.counter_id("overlay.tasks_submitted"),
            tasks_completed: metrics.counter_id("overlay.tasks_completed"),
            tasks_failed: metrics.counter_id("overlay.tasks_failed"),
            tasks_timed_out: metrics.counter_id("overlay.tasks_timed_out"),
            joins: metrics.counter_id("overlay.joins"),
            content_published: metrics.counter_id("overlay.content_published"),
            file_requests_served: metrics.counter_id("overlay.file_requests_served"),
            file_requests_unserved: metrics.counter_id("overlay.file_requests_unserved"),
            jobs_unplaced: metrics.counter_id("overlay.jobs_unplaced"),
            gossip_received: metrics.counter_id("overlay.gossip_received"),
            retransmissions: metrics.counter_id("overlay.retransmissions"),
            retries_exhausted: metrics.counter_id("overlay.retries_exhausted"),
            stale_views_dropped: metrics.counter_id("overlay.stale_views_dropped"),
            petitions_forwarded: metrics.counter_id("overlay.petitions_forwarded"),
            forwards_received: metrics.counter_id("overlay.forwards_received"),
            forwards_served: metrics.counter_id("overlay.forwards_served"),
            forwards_exhausted: metrics.counter_id("overlay.forwards_exhausted"),
        }
    }
}

impl Broker {
    /// Bumps the protocol counter picked by `which` by `n` at once.
    pub(crate) fn bump_by(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        which: fn(&BrokerCounters) -> MetricId,
        n: u64,
    ) {
        if n == 0 {
            return;
        }
        let ids = self
            .counters
            .get_or_insert_with(|| BrokerCounters::resolve(ctx.metrics()));
        let id = which(ids);
        ctx.metrics().incr_id(id, n);
    }
}

impl Broker {
    /// Bumps the protocol counter picked by `which`, resolving the handle
    /// set on first use.
    pub(crate) fn bump(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        which: fn(&BrokerCounters) -> MetricId,
    ) {
        let ids = self
            .counters
            .get_or_insert_with(|| BrokerCounters::resolve(ctx.metrics()));
        let id = which(ids);
        ctx.metrics().incr_id(id, 1);
    }
}
