//! The peer registry: who is in the overlay and what the broker knows
//! about each member.
//!
//! [`PeerRegistry`] owns the peer entries (advertisement, broker-side
//! statistics, peer-reported snapshot, observed interaction history), the
//! published-content index, the federation roster learnt from fellow
//! brokers, and an interned host-name cache so hot paths never re-allocate
//! display names. The membership/discovery/statistics message handlers
//! live here as `impl Broker` blocks; the actor merely dispatches to them.
//!
//! Storage is a **slab**: entries live in one contiguous `Vec`, freed slots
//! are recycled LIFO, and a `PeerId → slot` index provides O(1) lookup.
//! Under churn a million-peer roster therefore occupies memory proportional
//! to the *concurrent* population, not the total number of joins, and the
//! entries stay cache-adjacent for the roster-snapshot scan that selection
//! takes on every petition.

use std::collections::HashMap;
use std::sync::Arc;

use netsim::engine::Context;
use netsim::node::NodeId;
use netsim::time::{SimDuration, SimTime};

use crate::advertisement::{ContentAdvertisement, PeerAdvertisement};
use crate::footprint::{map_estimate, slots_estimate, FootprintBreakdown, MemoryFootprint};
use crate::id::PeerId;
use crate::message::OverlayMsg;
use crate::selector::{CandidateView, InteractionHistory};
use crate::stats::{PeerStats, StatsSnapshot};

use super::Broker;

/// Everything the broker tracks about one registered peer.
pub(crate) struct PeerEntry {
    pub(crate) adv: PeerAdvertisement,
    /// The advertised hostname, interned once at admission so per-selection
    /// roster snapshots clone a refcount instead of a string buffer.
    pub(crate) name: Arc<str>,
    pub(crate) stats: PeerStats,
    pub(crate) reported: Option<StatsSnapshot>,
    pub(crate) history: InteractionHistory,
}

/// One published copy of a piece of content.
#[derive(Debug, Clone)]
pub(crate) struct Holding {
    pub(crate) peer: PeerId,
    pub(crate) node: NodeId,
    pub(crate) content: crate::id::ContentId,
    pub(crate) size: u64,
    pub(crate) adv: ContentAdvertisement,
}

/// A gossiped candidate plus the virtual time its sending broker took
/// the snapshot, so selection can apply a staleness window.
pub(crate) struct RemoteView {
    pub(crate) view: CandidateView,
    pub(crate) as_of: SimTime,
}

/// The membership layer: registered peers, their statistics, published
/// content, and the federation roster.
#[derive(Default)]
pub(crate) struct PeerRegistry {
    /// Entry slab; `None` marks a recyclable slot left by an eviction.
    entries: Vec<Option<PeerEntry>>,
    /// Free slot indices, reused LIFO so churn does not grow the slab.
    free: Vec<u32>,
    /// Registered peer → slab slot.
    index: HashMap<PeerId, u32>,
    by_node: HashMap<NodeId, PeerId>,
    /// Candidate views learnt from fellow brokers, keyed by peer.
    remote_peers: HashMap<PeerId, RemoteView>,
    /// Departure tombstones: peers this broker saw leave, and when. A
    /// gossiped view older than the tombstone is a stale echo and must
    /// not resurrect the peer; a newer one proves it rejoined elsewhere
    /// and clears the tombstone.
    departed: HashMap<PeerId, SimTime>,
    /// Last time each fellow broker was heard from (gossip or forwarded
    /// petitions): the heartbeat table failover liveness reads.
    broker_heartbeats: HashMap<NodeId, SimTime>,
    /// Published content by name → holders.
    content: HashMap<String, Vec<Holding>>,
    /// Interned display names by host, so record keeping on the transfer
    /// and task hot paths clones an `Arc` instead of allocating a String.
    names: HashMap<NodeId, Arc<str>>,
}

impl PeerRegistry {
    pub(crate) fn new() -> Self {
        PeerRegistry::default()
    }

    /// Number of registered peers.
    pub(crate) fn peer_count(&self) -> usize {
        self.index.len()
    }

    /// Capacity of the entry slab (occupied + recyclable slots). Bounded
    /// by the high-water mark of concurrent peers, not by total joins.
    #[cfg(test)]
    pub(crate) fn slab_capacity(&self) -> usize {
        self.entries.len()
    }

    /// Whether any peer is registered.
    pub(crate) fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `peer` is a registered member.
    pub(crate) fn has_peer(&self, peer: PeerId) -> bool {
        self.index.contains_key(&peer)
    }

    /// The registered peer living on `node`, if any.
    pub(crate) fn peer_of(&self, node: NodeId) -> Option<PeerId> {
        self.by_node.get(&node).copied()
    }

    /// Whether a registered peer currently occupies `node`.
    pub(crate) fn node_occupied(&self, node: NodeId) -> bool {
        self.by_node.contains_key(&node)
    }

    /// Shared access to a registered peer's entry.
    pub(crate) fn entry(&self, peer: PeerId) -> Option<&PeerEntry> {
        self.index
            .get(&peer)
            .and_then(|&slot| self.entries[slot as usize].as_ref())
    }

    /// Mutable access to a registered peer's entry.
    pub(crate) fn entry_mut(&mut self, peer: PeerId) -> Option<&mut PeerEntry> {
        let slot = *self.index.get(&peer)?;
        self.entries[slot as usize].as_mut()
    }

    /// All occupied entries, in slab order (deterministic: slot assignment
    /// is a pure function of the join/leave event order).
    pub(crate) fn entries(&self) -> impl Iterator<Item = &PeerEntry> {
        self.entries.iter().filter_map(|e| e.as_ref())
    }

    /// The host of a registered peer.
    pub(crate) fn node_of(&self, peer: PeerId) -> Option<NodeId> {
        self.entry(peer).map(|e| e.adv.node)
    }

    /// The interned display name of `node`, allocated at most once per host.
    pub(crate) fn display_name(&mut self, ctx: &Context<OverlayMsg>, node: NodeId) -> Arc<str> {
        self.names
            .entry(node)
            .or_insert_with(|| Arc::from(ctx.node_name(node)))
            .clone()
    }

    /// Admits (or refreshes) a peer from its advertisement.
    ///
    /// A re-join **refreshes** the stored advertisement, interned name,
    /// `cpu_gops`, and the node index (unmapping the old host when the
    /// peer moved) while preserving accumulated statistics, the last
    /// reported snapshot, and interaction history — at the registry level
    /// a rejoin is indistinguishable from a duplicate-Join retransmission,
    /// so identity must survive. The peer also stops being a federation
    /// rumor: it is now first-hand knowledge.
    pub(crate) fn admit(&mut self, adv: PeerAdvertisement, now: SimTime) {
        let peer = adv.peer;
        let cpu = adv.cpu_gops;
        self.remote_peers.remove(&peer);
        // First-hand readmission beats any departure we recorded earlier.
        self.departed.remove(&peer);
        // A host runs one peer: a Join from a node that already carries a
        // *different* identity supersedes the old occupant (crash-rejoin
        // without a Leave), keeping by_node a bijection.
        if let Some(&prev) = self.by_node.get(&adv.node) {
            if prev != peer {
                self.expel(prev);
            }
        }
        if let Some(&slot) = self.index.get(&peer) {
            let old_node = self.entries[slot as usize]
                .as_ref()
                .expect("indexed slot occupied")
                .adv
                .node;
            if old_node != adv.node && self.by_node.get(&old_node) == Some(&peer) {
                self.by_node.remove(&old_node);
            }
            self.by_node.insert(adv.node, peer);
            let entry = self.entries[slot as usize].as_mut().expect("occupied");
            if &*entry.name != adv.name.as_str() {
                entry.name = Arc::from(adv.name.as_str());
            }
            entry.adv = adv;
            entry.stats.cpu_gops = cpu;
            return;
        }
        self.by_node.insert(adv.node, peer);
        let entry = PeerEntry {
            name: Arc::from(adv.name.as_str()),
            adv,
            stats: PeerStats::new(now, cpu),
            reported: None,
            history: InteractionHistory::empty(),
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.entries[slot as usize] = Some(entry);
                slot
            }
            None => {
                self.entries.push(Some(entry));
                (self.entries.len() - 1) as u32
            }
        };
        self.index.insert(peer, slot);
    }

    /// Evicts a peer (voluntary leave), forgetting its entry and node
    /// mapping and recycling its slab slot. Content holdings are filtered
    /// lazily at discovery/serve time via [`PeerRegistry::has_peer`].
    pub(crate) fn expel(&mut self, peer: PeerId) -> bool {
        let Some(slot) = self.index.remove(&peer) else {
            return false;
        };
        let entry = self.entries[slot as usize].take().expect("indexed slot");
        if self.by_node.get(&entry.adv.node) == Some(&peer) {
            self.by_node.remove(&entry.adv.node);
        }
        self.free.push(slot);
        true
    }

    /// Records a federation-learnt candidate view taken at `as_of`,
    /// unless it concerns a peer already registered here, would shadow a
    /// host that has a locally-registered peer (never trust a relay over
    /// first-hand knowledge), or is a stale echo of a peer this broker
    /// already saw depart. A view *newer* than the departure tombstone
    /// proves the peer rejoined elsewhere and clears it. Returns whether
    /// the view was stored.
    pub(crate) fn learn_remote(&mut self, view: CandidateView, as_of: SimTime) -> bool {
        if self.index.contains_key(&view.peer) || self.by_node.contains_key(&view.node) {
            return false;
        }
        if let Some(&left_at) = self.departed.get(&view.peer) {
            if as_of <= left_at {
                return false;
            }
            self.departed.remove(&view.peer);
        }
        self.remote_peers
            .insert(view.peer, RemoteView { view, as_of });
        true
    }

    /// Records that `peer` left this broker at `now`, so later gossip
    /// snapshots taken before the departure cannot resurrect it.
    pub(crate) fn note_departed(&mut self, peer: PeerId, now: SimTime) {
        self.departed.insert(peer, now);
    }

    /// Records that fellow broker `node` was heard from at `now`.
    pub(crate) fn note_broker_alive(&mut self, node: NodeId, now: SimTime) {
        self.broker_heartbeats.insert(node, now);
    }

    /// Heartbeat liveness: a fellow broker is presumed alive until it has
    /// been silent longer than `bound`. Never-heard brokers are presumed
    /// alive (the federation may simply not have gossiped yet).
    pub(crate) fn broker_alive(&self, node: NodeId, now: SimTime, bound: SimDuration) -> bool {
        match self.broker_heartbeats.get(&node) {
            Some(&heard) => now - heard <= bound,
            None => true,
        }
    }

    /// Forgets every federation view of `peer` and of anything claiming to
    /// live on `node` (a departed peer must not survive as a rumor).
    pub(crate) fn purge_remote(&mut self, peer: PeerId, node: NodeId) {
        self.remote_peers.remove(&peer);
        self.remote_peers.retain(|_, v| v.view.node != node);
    }

    /// Number of federation-learnt (non-local) candidate views.
    #[cfg(test)]
    pub(crate) fn remote_count(&self) -> usize {
        self.remote_peers.len()
    }

    /// All registered hosts, in deterministic order.
    pub(crate) fn registered_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.by_node.keys().copied().collect();
        nodes.sort(); // deterministic order
        nodes
    }

    /// The published holdings of `name`, if any.
    pub(crate) fn holdings(&self, name: &str) -> Option<&Vec<Holding>> {
        self.content.get(name)
    }

    /// Mutable access to the holdings list for `name`, creating it empty.
    pub(crate) fn holdings_mut(&mut self, name: &str) -> &mut Vec<Holding> {
        self.content.entry(name.to_string()).or_default()
    }

    /// Published content whose name contains `pattern`.
    pub(crate) fn matching_holdings<'a>(
        &'a self,
        pattern: &'a str,
    ) -> impl Iterator<Item = &'a Holding> + 'a {
        self.content
            .iter()
            .filter(move |(name, _)| name.contains(pattern))
            .flat_map(|(_, holdings)| holdings.iter())
    }

    /// Snapshot of every known candidate (registered + federation-learnt),
    /// sorted by node for determinism. When `staleness` is set, gossiped
    /// views older than that bound are left out: the stale-stat tolerance
    /// window of the federation design.
    pub(crate) fn candidate_views(
        &self,
        now: SimTime,
        stats_k_hours: usize,
        staleness: Option<SimDuration>,
    ) -> Vec<CandidateView> {
        let mut views: Vec<CandidateView> = self
            .entries()
            .map(|entry| {
                // Broker-side stats, with queue gauges overridden by the
                // peer's own latest report when available.
                let mut snapshot = entry.stats.snapshot(now, stats_k_hours);
                if let Some(reported) = &entry.reported {
                    snapshot.inbox_now = reported.inbox_now;
                    snapshot.inbox_avg = reported.inbox_avg;
                    snapshot.outbox_now = reported.outbox_now;
                    snapshot.outbox_avg = reported.outbox_avg;
                }
                CandidateView {
                    peer: entry.adv.peer,
                    node: entry.adv.node,
                    name: entry.name.clone(),
                    cpu_gops: entry.adv.cpu_gops,
                    snapshot,
                    history: entry.history.clone(),
                }
            })
            .collect();
        // Merge federation-learnt peers that are not locally registered
        // and whose gossip snapshot is inside the staleness window.
        for remote in self.remote_peers.values() {
            if self.by_node.contains_key(&remote.view.node) {
                continue;
            }
            if let Some(bound) = staleness {
                if now - remote.as_of > bound {
                    continue;
                }
            }
            views.push(remote.view.clone());
        }
        views.sort_by_key(|v| v.node);
        views
    }

    /// Structural invariants, checked by tests after every mutation:
    /// index↔slab agreement, peers↔by_node bijection, slot accounting.
    #[cfg(test)]
    pub(crate) fn check_invariants(&self) {
        let occupied = self.entries.iter().filter(|e| e.is_some()).count();
        assert_eq!(occupied, self.index.len(), "index covers the slab");
        assert_eq!(
            self.free.len() + occupied,
            self.entries.len(),
            "every slot is occupied or free"
        );
        for (&peer, &slot) in &self.index {
            let entry = self.entries[slot as usize]
                .as_ref()
                .expect("indexed slot occupied");
            assert_eq!(entry.adv.peer, peer, "slab slot agrees with index key");
            assert_eq!(
                self.by_node.get(&entry.adv.node),
                Some(&peer),
                "registered peer's current node maps back to it"
            );
        }
        for (&node, &peer) in &self.by_node {
            let entry = self.entry(peer).expect("by_node points at a member");
            assert_eq!(entry.adv.node, node, "no stale node mapping");
        }
        for remote in self.remote_peers.values() {
            assert!(
                !self.index.contains_key(&remote.view.peer),
                "a registered peer is never also a federation rumor"
            );
        }
        for peer in self.departed.keys() {
            assert!(
                !self.index.contains_key(peer),
                "a registered peer is never also a departure tombstone"
            );
        }
    }
}

impl MemoryFootprint for PeerRegistry {
    /// Length-based heap estimate (see [`crate::footprint`]): entry slots
    /// and id indexes under `roster`, windowed-ratio rings under `stats`,
    /// owned advertisement strings under `ads`, the content directory
    /// under `content`, and federation views under `gossip`.
    fn memory_footprint(&self) -> FootprintBreakdown {
        let mut fp = FootprintBreakdown {
            roster: slots_estimate::<Option<PeerEntry>>(self.entries.len())
                + slots_estimate::<u32>(self.free.len())
                + map_estimate::<PeerId, u32>(self.index.len())
                + map_estimate::<NodeId, PeerId>(self.by_node.len())
                + map_estimate::<NodeId, Arc<str>>(self.names.len()),
            gossip: map_estimate::<PeerId, RemoteView>(self.remote_peers.len())
                + map_estimate::<PeerId, SimTime>(self.departed.len())
                + map_estimate::<NodeId, SimTime>(self.broker_heartbeats.len()),
            ..FootprintBreakdown::default()
        };
        for name in self.names.values() {
            fp.roster += name.len() as u64;
        }
        for entry in self.entries() {
            fp.roster += entry.name.len() as u64;
            fp.ads += entry.adv.name.len() as u64;
            fp.stats += entry.stats.message_window.heap_bytes();
        }
        for remote in self.remote_peers.values() {
            fp.gossip += remote.view.name.len() as u64;
        }
        for (key, holdings) in &self.content {
            fp.content += key.len() as u64 + slots_estimate::<Holding>(holdings.len());
            for h in holdings {
                fp.content += h.adv.name.len() as u64;
            }
        }
        fp
    }
}

impl Broker {
    pub(crate) fn on_join(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        from: NodeId,
        adv: PeerAdvertisement,
    ) {
        let now = ctx.now();
        let peer = adv.peer;
        self.registry.admit(adv, now);
        let group = self.groups.admit(peer);
        ctx.send(from, OverlayMsg::JoinAck { group });
        self.bump(ctx, |c| c.joins);
    }

    pub(crate) fn on_leave(&mut self, ctx: &mut Context<OverlayMsg>, peer: PeerId) {
        let node = self.registry.node_of(peer);
        self.registry.expel(peer);
        self.groups.expel(peer);
        if let Some(node) = node {
            // A departed peer must vanish from every roster the broker can
            // still hand to selection: the federation cache and the queue
            // of deferred commands aimed at its host. The tombstone keeps
            // later-arriving gossip snapshots taken *before* the departure
            // from resurrecting it.
            self.registry.purge_remote(peer, node);
            self.registry.note_departed(peer, ctx.now());
            self.schedule.cancel_for_node(node);
        }
        self.maybe_stop(ctx);
    }

    pub(crate) fn on_discover_peers(&mut self, ctx: &mut Context<OverlayMsg>, from: NodeId) {
        let now = ctx.now();
        let adverts: Vec<PeerAdvertisement> = self
            .registry
            .entries()
            .map(|e| e.adv.clone())
            .filter(|a| !a.is_expired(now))
            .collect();
        ctx.send(from, OverlayMsg::DiscoverPeersResponse { adverts });
    }

    pub(crate) fn on_stats_report(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        peer: PeerId,
        snapshot: StatsSnapshot,
    ) {
        let now = ctx.now();
        if let Some(entry) = self.registry.entry_mut(peer) {
            entry.reported = Some(snapshot);
            entry.stats.record_message(now, true);
        }
    }

    pub(crate) fn on_publish_content(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        from: NodeId,
        adv: ContentAdvertisement,
    ) {
        let node = self.registry.node_of(adv.owner).unwrap_or(from);
        self.registry.holdings_mut(&adv.name).push(Holding {
            peer: adv.owner,
            node,
            content: adv.content,
            size: adv.size_bytes,
            adv,
        });
        self.bump(ctx, |c| c.content_published);
    }

    pub(crate) fn on_discover_content(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        from: NodeId,
        pattern: String,
    ) {
        let now = ctx.now();
        let adverts: Vec<ContentAdvertisement> = self
            .registry
            .matching_holdings(&pattern)
            .filter(|h| !h.adv.is_expired(now) && self.registry.has_peer(h.peer))
            .map(|h| h.adv.clone())
            .collect();
        ctx.send(from, OverlayMsg::DiscoverContentResponse { adverts });
    }

    pub(crate) fn on_broker_gossip(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        from_broker: NodeId,
        sent_at: SimTime,
        roster: Vec<CandidateView>,
    ) {
        self.registry.note_broker_alive(from_broker, ctx.now());
        let mut dropped = 0u64;
        for view in roster {
            // Never shadow a locally-registered peer with a relay, and
            // never resurrect one this broker already saw depart.
            if !self.registry.learn_remote(view, sent_at) {
                dropped += 1;
            }
        }
        self.bump_by(ctx, |c| c.stale_views_dropped, dropped);
        self.bump(ctx, |c| c.gossip_received);
    }

    pub(crate) fn on_gossip_timer(&mut self, ctx: &mut Context<OverlayMsg>) {
        let now = ctx.now();
        let roster =
            self.registry
                .candidate_views(now, self.cfg.stats_k_hours, self.cfg.staleness_bound);
        // Only gossip locally-registered peers (avoid relaying relays).
        let local: Vec<CandidateView> = roster
            .into_iter()
            .filter(|v| self.registry.node_occupied(v.node))
            .collect();
        let me = ctx.self_id();
        for &b in &self.cfg.peer_brokers.clone() {
            ctx.send(
                b,
                OverlayMsg::BrokerGossip {
                    from_broker: me,
                    sent_at: now,
                    roster: local.clone(),
                },
            );
        }
        // Publish the registry's estimated heap footprint on the gossip
        // cadence. Gauge names carry this broker's node index: gauges sum
        // by name across shards, so unique-per-broker names reconstruct
        // each broker's last-set value in the merged metrics, and the
        // `registry.bytes.` prefix sums them fleet-wide.
        let fp = self.registry.memory_footprint();
        let node = ctx.self_id().index();
        ctx.metrics()
            .set_gauge(&format!("registry.bytes.{node}"), fp.total() as f64);
        ctx.metrics().set_gauge(
            &format!("registry.peers.{node}"),
            self.registry.peer_count() as f64,
        );
        for (component, bytes) in fp.components() {
            ctx.metrics()
                .set_gauge(&format!("registry.{component}_bytes.{node}"), bytes as f64);
        }
        ctx.schedule_timer(self.cfg.gossip_interval, super::GOSSIP_TAG);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advertisement::DEFAULT_LIFETIME;
    use crate::id::IdGenerator;
    use netsim::rng::SimRng;
    use netsim::time::SimDuration;

    fn adv(ids: &mut IdGenerator, node: u32, name: &str, now: SimTime) -> PeerAdvertisement {
        PeerAdvertisement {
            peer: PeerId::generate(ids),
            node: NodeId(node),
            name: name.to_string(),
            cpu_gops: 1.0,
            accepts_tasks: true,
            published: now,
            lifetime: DEFAULT_LIFETIME,
        }
    }

    #[test]
    fn admit_then_expel_evicts_both_indices() {
        let mut ids = IdGenerator::new(1);
        let mut reg = PeerRegistry::new();
        let a = adv(&mut ids, 1, "alpha", SimTime::ZERO);
        let peer = a.peer;
        reg.admit(a, SimTime::ZERO);
        assert_eq!(reg.peer_count(), 1);
        assert!(reg.has_peer(peer));
        assert_eq!(reg.peer_of(NodeId(1)), Some(peer));
        assert!(reg.expel(peer));
        assert_eq!(reg.peer_count(), 0);
        assert_eq!(reg.peer_of(NodeId(1)), None);
        assert!(!reg.expel(peer), "double eviction is a no-op");
    }

    #[test]
    fn memory_footprint_tracks_population() {
        let mut ids = IdGenerator::new(11);
        let mut reg = PeerRegistry::new();
        let empty = reg.memory_footprint();
        assert_eq!(empty.total(), 0, "an empty registry costs nothing");

        let a = adv(&mut ids, 1, "alpha", SimTime::ZERO);
        let b = adv(&mut ids, 2, "beta", SimTime::ZERO);
        let peer_a = a.peer;
        reg.admit(a, SimTime::ZERO);
        reg.admit(b, SimTime::ZERO);
        let two = reg.memory_footprint();
        assert!(two.roster > 0, "entry slots and indexes are counted");
        assert!(two.stats > 0, "windowed-ratio rings are counted");
        assert!(two.ads > 0, "advertisement names are counted");
        assert_eq!(two.content, 0, "nothing published yet");
        assert!(two.total() > empty.total());

        // Eviction returns the slot to the free list: roster shrinks but
        // keeps the slab (the slot stays allocated, plus the free entry).
        reg.expel(peer_a);
        let one = reg.memory_footprint();
        assert!(one.total() < two.total(), "footprint follows the roster");
        assert!(one.roster > 0);
    }

    #[test]
    fn readmission_keeps_the_original_entry() {
        // A duplicate Join (retransmission) must not reset accumulated
        // stats/history: `admit` refreshes identity fields only.
        let mut ids = IdGenerator::new(2);
        let mut reg = PeerRegistry::new();
        let a = adv(&mut ids, 3, "beta", SimTime::ZERO);
        let peer = a.peer;
        reg.admit(a.clone(), SimTime::ZERO);
        reg.entry_mut(peer).unwrap().history.transfers_completed = 7;
        reg.admit(a, SimTime::ZERO + SimDuration::from_secs(9));
        assert_eq!(
            reg.entry_mut(peer).unwrap().history.transfers_completed,
            7,
            "re-join must not clear history"
        );
        assert_eq!(reg.peer_count(), 1);
    }

    #[test]
    fn readmission_refreshes_advertisement_and_node_index() {
        // THE churn bug this PR fixes: a peer that left and rejoined from a
        // different host (new node, new capacity) must be re-indexed. The
        // old code's `or_insert_with` kept the stale entry, leaving a
        // dangling `by_node` key on the old host and stale `cpu_gops`.
        let mut ids = IdGenerator::new(7);
        let mut reg = PeerRegistry::new();
        let first = adv(&mut ids, 4, "gamma", SimTime::ZERO);
        let peer = first.peer;
        reg.admit(first, SimTime::ZERO);
        reg.entry_mut(peer).unwrap().history.transfers_completed = 3;

        let rejoin = PeerAdvertisement {
            peer,
            node: NodeId(9),
            name: "gamma-prime".to_string(),
            cpu_gops: 2.5,
            accepts_tasks: false,
            published: SimTime::ZERO + SimDuration::from_secs(60),
            lifetime: DEFAULT_LIFETIME,
        };
        reg.admit(rejoin, SimTime::ZERO + SimDuration::from_secs(60));
        reg.check_invariants();

        let entry = reg.entry(peer).unwrap();
        assert_eq!(entry.adv.node, NodeId(9), "advertisement refreshed");
        assert_eq!(entry.adv.cpu_gops, 2.5, "capacity refreshed");
        assert_eq!(entry.stats.cpu_gops, 2.5, "stats see the new capacity");
        assert_eq!(&*entry.name, "gamma-prime", "interned name refreshed");
        assert!(!entry.adv.accepts_tasks);
        assert_eq!(
            entry.history.transfers_completed, 3,
            "history survives the move"
        );
        assert_eq!(reg.peer_of(NodeId(9)), Some(peer), "new host indexed");
        assert_eq!(reg.peer_of(NodeId(4)), None, "old host unmapped");
        assert_eq!(reg.peer_count(), 1);
    }

    #[test]
    fn admit_forgets_the_federation_rumor() {
        // Once a peer registers locally it must stop being served from the
        // remote roster, even if gossip advertised it first.
        let mut ids = IdGenerator::new(11);
        let mut reg = PeerRegistry::new();
        let a = adv(&mut ids, 2, "delta", SimTime::ZERO);
        assert!(reg.learn_remote(
            CandidateView {
                peer: a.peer,
                node: NodeId(2),
                name: "delta".into(),
                cpu_gops: 1.0,
                snapshot: StatsSnapshot::empty(1.0),
                history: InteractionHistory::empty(),
            },
            SimTime::ZERO,
        ));
        assert_eq!(reg.remote_count(), 1);
        reg.admit(a, SimTime::ZERO);
        reg.check_invariants();
        assert_eq!(reg.remote_count(), 0);
        assert_eq!(reg.candidate_views(SimTime::ZERO, 24, None).len(), 1);
    }

    #[test]
    fn gossip_cannot_resurrect_a_departed_peer() {
        // The federation bug this PR fixes: a gossip snapshot taken before
        // a peer's departure used to re-enter the remote roster after the
        // local broker had already seen the Leave, so selection kept
        // offering a peer known to be gone.
        let mut ids = IdGenerator::new(21);
        let mut reg = PeerRegistry::new();
        let a = adv(&mut ids, 6, "zeta", SimTime::ZERO);
        let peer = a.peer;
        let node = a.node;
        let view = CandidateView {
            peer,
            node,
            name: "zeta".into(),
            cpu_gops: 1.0,
            snapshot: StatsSnapshot::empty(1.0),
            history: InteractionHistory::empty(),
        };
        reg.admit(a, SimTime::ZERO);
        let t5 = SimTime::ZERO + SimDuration::from_secs(5);
        reg.expel(peer);
        reg.purge_remote(peer, node);
        reg.note_departed(peer, t5);
        reg.check_invariants();

        // A stale echo (snapshot taken at t=3 < departure at t=5) must be
        // rejected and leave the tombstone in place.
        let t3 = SimTime::ZERO + SimDuration::from_secs(3);
        assert!(!reg.learn_remote(view.clone(), t3), "stale echo rejected");
        assert_eq!(reg.remote_count(), 0);
        assert!(reg.candidate_views(t5, 24, None).is_empty());
        reg.check_invariants();

        // A snapshot taken *after* the departure proves the peer rejoined
        // elsewhere: accepted, tombstone cleared.
        let t6 = SimTime::ZERO + SimDuration::from_secs(6);
        assert!(reg.learn_remote(view, t6), "newer view clears tombstone");
        assert_eq!(reg.remote_count(), 1);
        reg.check_invariants();
    }

    #[test]
    fn candidate_views_apply_the_staleness_window() {
        let mut ids = IdGenerator::new(23);
        let mut reg = PeerRegistry::new();
        let fresh = CandidateView {
            peer: PeerId::generate(&mut ids),
            node: NodeId(11),
            name: "fresh".into(),
            cpu_gops: 1.0,
            snapshot: StatsSnapshot::empty(1.0),
            history: InteractionHistory::empty(),
        };
        let stale = CandidateView {
            peer: PeerId::generate(&mut ids),
            node: NodeId(12),
            name: "stale".into(),
            cpu_gops: 1.0,
            snapshot: StatsSnapshot::empty(1.0),
            history: InteractionHistory::empty(),
        };
        let now = SimTime::ZERO + SimDuration::from_secs(300);
        assert!(reg.learn_remote(fresh, now - SimDuration::from_secs(60)));
        assert!(reg.learn_remote(stale, now - SimDuration::from_secs(250)));
        let bounded = reg.candidate_views(now, 24, Some(SimDuration::from_secs(120)));
        assert_eq!(bounded.len(), 1, "only the fresh view survives");
        assert_eq!(bounded[0].node, NodeId(11));
        let unbounded = reg.candidate_views(now, 24, None);
        assert_eq!(unbounded.len(), 2, "no bound, no filtering");
    }

    #[test]
    fn broker_heartbeats_drive_liveness() {
        let mut reg = PeerRegistry::new();
        let now = SimTime::ZERO + SimDuration::from_secs(500);
        let bound = SimDuration::from_secs(120);
        assert!(
            reg.broker_alive(NodeId(1), now, bound),
            "never-heard brokers are presumed alive"
        );
        reg.note_broker_alive(NodeId(1), now - SimDuration::from_secs(60));
        assert!(reg.broker_alive(NodeId(1), now, bound));
        reg.note_broker_alive(NodeId(2), now - SimDuration::from_secs(200));
        assert!(!reg.broker_alive(NodeId(2), now, bound), "silent too long");
    }

    #[test]
    fn expelled_slots_are_recycled() {
        // Churn must not grow the slab: N sequential join/leave cycles
        // keep capacity at the concurrent-population high-water mark.
        let mut ids = IdGenerator::new(5);
        let mut reg = PeerRegistry::new();
        for round in 0..100 {
            let a = adv(&mut ids, round % 3, "cycled", SimTime::ZERO);
            let peer = a.peer;
            reg.admit(a, SimTime::ZERO);
            reg.check_invariants();
            reg.expel(peer);
            reg.check_invariants();
        }
        assert_eq!(reg.peer_count(), 0);
        assert_eq!(reg.slab_capacity(), 1, "slots recycled, slab stayed flat");
    }

    #[test]
    fn candidate_views_sorted_and_federation_merged() {
        let mut ids = IdGenerator::new(3);
        let mut reg = PeerRegistry::new();
        reg.admit(adv(&mut ids, 5, "e", SimTime::ZERO), SimTime::ZERO);
        reg.admit(adv(&mut ids, 2, "b", SimTime::ZERO), SimTime::ZERO);
        // A remote peer on an unregistered node is merged…
        let remote = CandidateView {
            peer: PeerId::generate(&mut ids),
            node: NodeId(9),
            name: "remote".into(),
            cpu_gops: 1.0,
            snapshot: StatsSnapshot::empty(1.0),
            history: InteractionHistory::empty(),
        };
        reg.learn_remote(remote.clone(), SimTime::ZERO);
        // …but one shadowing a registered node is not.
        let shadow = CandidateView {
            node: NodeId(5),
            ..remote.clone()
        };
        reg.learn_remote(
            CandidateView {
                peer: PeerId::generate(&mut ids),
                ..shadow
            },
            SimTime::ZERO,
        );
        let views = reg.candidate_views(SimTime::ZERO, 24, None);
        let nodes: Vec<u32> = views.iter().map(|v| v.node.0).collect();
        assert_eq!(nodes, vec![2, 5, 9], "sorted by node, shadow dropped");
    }

    #[test]
    fn reported_snapshot_overrides_queue_gauges() {
        let mut ids = IdGenerator::new(4);
        let mut reg = PeerRegistry::new();
        let a = adv(&mut ids, 1, "g", SimTime::ZERO);
        let peer = a.peer;
        reg.admit(a, SimTime::ZERO);
        let mut reported = StatsSnapshot::empty(1.0);
        reported.inbox_now = 11.0;
        reported.outbox_avg = 2.5;
        reg.entry_mut(peer).unwrap().reported = Some(reported);
        let views = reg.candidate_views(SimTime::ZERO, 24, None);
        assert_eq!(views[0].snapshot.inbox_now, 11.0);
        assert_eq!(views[0].snapshot.outbox_avg, 2.5);
    }

    #[test]
    fn random_churn_preserves_registry_invariants() {
        // Property test: a long random interleaving of join / leave /
        // rejoin-elsewhere must keep the slab index, the peers↔by_node
        // bijection, and every advertisement field coherent. Before the
        // admit-refresh fix this trips within a handful of steps.
        let mut rng = SimRng::new(0xC0FF_EE07);
        let mut ids = IdGenerator::new(6);
        let mut reg = PeerRegistry::new();
        // Pool of identities that join, leave, and rejoin from new hosts.
        let mut pool: Vec<PeerAdvertisement> = (0..24)
            .map(|i| adv(&mut ids, 1000 + i, &format!("p{i}"), SimTime::ZERO))
            .collect();
        let mut member = vec![false; pool.len()];
        for step in 0..2000u64 {
            let now = SimTime::from_secs_f64(step as f64);
            let i = rng.below(pool.len() as u64) as usize;
            match rng.below(4) {
                0 | 1 => {
                    // (Re)join, usually from a brand-new host with fresh
                    // capacity — the churn case that used to dangle.
                    if rng.bernoulli(0.8) {
                        pool[i].node = NodeId(2000 + rng.below(4000) as u32);
                        pool[i].cpu_gops = 0.5 + rng.uniform() * 4.0;
                        pool[i].name = format!("p{i}@{}", pool[i].node.0);
                    }
                    pool[i].published = now;
                    reg.admit(pool[i].clone(), now);
                    // Landing on an occupied host displaces its occupant.
                    for j in 0..pool.len() {
                        if j != i && member[j] && pool[j].node == pool[i].node {
                            member[j] = false;
                        }
                    }
                    member[i] = true;
                }
                2 => {
                    assert_eq!(reg.expel(pool[i].peer), member[i]);
                    if member[i] {
                        // The broker's Leave path: purge + tombstone.
                        reg.purge_remote(pool[i].peer, pool[i].node);
                        reg.note_departed(pool[i].peer, now);
                    }
                    member[i] = false;
                }
                _ => {
                    // Gossip about a random identity; the registry must
                    // never let a rumor shadow or outlive membership. The
                    // snapshot age varies so tombstones both hold and clear.
                    let j = rng.below(pool.len() as u64) as usize;
                    let as_of = now - SimDuration::from_secs(rng.below(20));
                    reg.learn_remote(
                        CandidateView {
                            peer: pool[j].peer,
                            node: pool[j].node,
                            name: Arc::from(pool[j].name.as_str()),
                            cpu_gops: pool[j].cpu_gops,
                            snapshot: StatsSnapshot::empty(pool[j].cpu_gops),
                            history: InteractionHistory::empty(),
                        },
                        as_of,
                    );
                    if member[j] {
                        reg.purge_remote(pool[j].peer, pool[j].node);
                    }
                }
            }
            reg.check_invariants();
            // No stale advertisement fields: what the registry serves for a
            // member is exactly the latest thing that member advertised.
            if member[i] {
                let entry = reg.entry(pool[i].peer).unwrap();
                assert_eq!(entry.adv.node, pool[i].node);
                assert_eq!(entry.adv.cpu_gops, pool[i].cpu_gops);
                assert_eq!(&*entry.name, pool[i].name.as_str());
            }
        }
        assert!(
            reg.slab_capacity() <= pool.len(),
            "slab bounded by concurrent population ({} > {})",
            reg.slab_capacity(),
            pool.len()
        );
    }
}
