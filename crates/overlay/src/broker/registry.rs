//! The peer registry: who is in the overlay and what the broker knows
//! about each member.
//!
//! [`PeerRegistry`] owns the peer entries (advertisement, broker-side
//! statistics, peer-reported snapshot, observed interaction history), the
//! published-content index, the federation roster learnt from fellow
//! brokers, and an interned host-name cache so hot paths never re-allocate
//! display names. The membership/discovery/statistics message handlers
//! live here as `impl Broker` blocks; the actor merely dispatches to them.

use std::collections::HashMap;
use std::sync::Arc;

use netsim::engine::Context;
use netsim::node::NodeId;
use netsim::time::SimTime;

use crate::advertisement::{ContentAdvertisement, PeerAdvertisement};
use crate::id::PeerId;
use crate::message::OverlayMsg;
use crate::selector::{CandidateView, InteractionHistory};
use crate::stats::{PeerStats, StatsSnapshot};

use super::Broker;

/// Everything the broker tracks about one registered peer.
pub(crate) struct PeerEntry {
    pub(crate) adv: PeerAdvertisement,
    /// The advertised hostname, interned once at admission so per-selection
    /// roster snapshots clone a refcount instead of a string buffer.
    pub(crate) name: Arc<str>,
    pub(crate) stats: PeerStats,
    pub(crate) reported: Option<StatsSnapshot>,
    pub(crate) history: InteractionHistory,
}

/// One published copy of a piece of content.
#[derive(Debug, Clone)]
pub(crate) struct Holding {
    pub(crate) peer: PeerId,
    pub(crate) node: NodeId,
    pub(crate) content: crate::id::ContentId,
    pub(crate) size: u64,
    pub(crate) adv: ContentAdvertisement,
}

/// The membership layer: registered peers, their statistics, published
/// content, and the federation roster.
#[derive(Default)]
pub(crate) struct PeerRegistry {
    pub(crate) peers: HashMap<PeerId, PeerEntry>,
    pub(crate) by_node: HashMap<NodeId, PeerId>,
    /// Candidate views learnt from fellow brokers, keyed by peer.
    pub(crate) remote_peers: HashMap<PeerId, CandidateView>,
    /// Published content by name → holders.
    pub(crate) content: HashMap<String, Vec<Holding>>,
    /// Interned display names by host, so record keeping on the transfer
    /// and task hot paths clones an `Arc` instead of allocating a String.
    names: HashMap<NodeId, Arc<str>>,
}

impl PeerRegistry {
    pub(crate) fn new() -> Self {
        PeerRegistry::default()
    }

    /// Number of registered peers.
    pub(crate) fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Whether any peer is registered.
    pub(crate) fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Whether `peer` is a registered member.
    pub(crate) fn has_peer(&self, peer: PeerId) -> bool {
        self.peers.contains_key(&peer)
    }

    /// The registered peer living on `node`, if any.
    pub(crate) fn peer_of(&self, node: NodeId) -> Option<PeerId> {
        self.by_node.get(&node).copied()
    }

    /// Mutable access to a registered peer's entry.
    pub(crate) fn entry_mut(&mut self, peer: PeerId) -> Option<&mut PeerEntry> {
        self.peers.get_mut(&peer)
    }

    /// The host of a registered peer.
    pub(crate) fn node_of(&self, peer: PeerId) -> Option<NodeId> {
        self.peers.get(&peer).map(|e| e.adv.node)
    }

    /// The interned display name of `node`, allocated at most once per host.
    pub(crate) fn display_name(&mut self, ctx: &Context<OverlayMsg>, node: NodeId) -> Arc<str> {
        self.names
            .entry(node)
            .or_insert_with(|| Arc::from(ctx.node_name(node)))
            .clone()
    }

    /// Admits (or refreshes) a peer from its advertisement.
    pub(crate) fn admit(&mut self, adv: PeerAdvertisement, now: SimTime) {
        let peer = adv.peer;
        let cpu = adv.cpu_gops;
        self.by_node.insert(adv.node, peer);
        self.peers.entry(peer).or_insert_with(|| PeerEntry {
            name: Arc::from(adv.name.as_str()),
            adv,
            stats: PeerStats::new(now, cpu),
            reported: None,
            history: InteractionHistory::empty(),
        });
    }

    /// Evicts a peer (voluntary leave), forgetting its entry and node
    /// mapping. Content holdings are filtered lazily at discovery/serve
    /// time via [`PeerRegistry::has_peer`].
    pub(crate) fn expel(&mut self, peer: PeerId) -> bool {
        if let Some(entry) = self.peers.remove(&peer) {
            self.by_node.remove(&entry.adv.node);
            true
        } else {
            false
        }
    }

    /// All registered hosts, in deterministic order.
    pub(crate) fn registered_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.by_node.keys().copied().collect();
        nodes.sort(); // deterministic order
        nodes
    }

    /// Snapshot of every known candidate (registered + federation-learnt),
    /// sorted by node for determinism.
    pub(crate) fn candidate_views(&self, now: SimTime, stats_k_hours: usize) -> Vec<CandidateView> {
        let mut views: Vec<CandidateView> = self
            .peers
            .values()
            .map(|entry| {
                // Broker-side stats, with queue gauges overridden by the
                // peer's own latest report when available.
                let mut snapshot = entry.stats.snapshot(now, stats_k_hours);
                if let Some(reported) = &entry.reported {
                    snapshot.inbox_now = reported.inbox_now;
                    snapshot.inbox_avg = reported.inbox_avg;
                    snapshot.outbox_now = reported.outbox_now;
                    snapshot.outbox_avg = reported.outbox_avg;
                }
                CandidateView {
                    peer: entry.adv.peer,
                    node: entry.adv.node,
                    name: entry.name.clone(),
                    cpu_gops: entry.adv.cpu_gops,
                    snapshot,
                    history: entry.history.clone(),
                }
            })
            .collect();
        // Merge federation-learnt peers that are not locally registered.
        for remote in self.remote_peers.values() {
            if !self.by_node.contains_key(&remote.node) {
                views.push(remote.clone());
            }
        }
        views.sort_by_key(|v| v.node);
        views
    }
}

impl Broker {
    pub(crate) fn on_join(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        from: NodeId,
        adv: PeerAdvertisement,
    ) {
        let now = ctx.now();
        let peer = adv.peer;
        self.registry.admit(adv, now);
        let group = self.groups.admit(peer);
        ctx.send(from, OverlayMsg::JoinAck { group });
        self.bump(ctx, |c| c.joins);
    }

    pub(crate) fn on_leave(&mut self, peer: PeerId) {
        self.registry.expel(peer);
        self.groups.expel(peer);
    }

    pub(crate) fn on_discover_peers(&mut self, ctx: &mut Context<OverlayMsg>, from: NodeId) {
        let now = ctx.now();
        let adverts: Vec<PeerAdvertisement> = self
            .registry
            .peers
            .values()
            .map(|e| e.adv.clone())
            .filter(|a| !a.is_expired(now))
            .collect();
        ctx.send(from, OverlayMsg::DiscoverPeersResponse { adverts });
    }

    pub(crate) fn on_stats_report(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        peer: PeerId,
        snapshot: StatsSnapshot,
    ) {
        let now = ctx.now();
        if let Some(entry) = self.registry.entry_mut(peer) {
            entry.reported = Some(snapshot);
            entry.stats.record_message(now, true);
        }
    }

    pub(crate) fn on_publish_content(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        from: NodeId,
        adv: ContentAdvertisement,
    ) {
        let node = self.registry.node_of(adv.owner).unwrap_or(from);
        self.registry
            .content
            .entry(adv.name.clone())
            .or_default()
            .push(Holding {
                peer: adv.owner,
                node,
                content: adv.content,
                size: adv.size_bytes,
                adv,
            });
        self.bump(ctx, |c| c.content_published);
    }

    pub(crate) fn on_discover_content(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        from: NodeId,
        pattern: String,
    ) {
        let now = ctx.now();
        let adverts: Vec<ContentAdvertisement> = self
            .registry
            .content
            .iter()
            .filter(|(name, _)| name.contains(&pattern))
            .flat_map(|(_, holdings)| holdings.iter())
            .filter(|h| !h.adv.is_expired(now) && self.registry.has_peer(h.peer))
            .map(|h| h.adv.clone())
            .collect();
        ctx.send(from, OverlayMsg::DiscoverContentResponse { adverts });
    }

    pub(crate) fn on_broker_gossip(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        roster: Vec<CandidateView>,
    ) {
        for view in roster {
            // Never shadow a locally-registered peer with a relay.
            if !self.registry.by_node.contains_key(&view.node) {
                self.registry.remote_peers.insert(view.peer, view);
            }
        }
        self.bump(ctx, |c| c.gossip_received);
    }

    pub(crate) fn on_gossip_timer(&mut self, ctx: &mut Context<OverlayMsg>) {
        let roster = self
            .registry
            .candidate_views(ctx.now(), self.cfg.stats_k_hours);
        // Only gossip locally-registered peers (avoid relaying relays).
        let local: Vec<CandidateView> = roster
            .into_iter()
            .filter(|v| self.registry.by_node.contains_key(&v.node))
            .collect();
        let me = ctx.self_id();
        for &b in &self.cfg.peer_brokers.clone() {
            ctx.send(
                b,
                OverlayMsg::BrokerGossip {
                    from_broker: me,
                    roster: local.clone(),
                },
            );
        }
        ctx.schedule_timer(self.cfg.gossip_interval, super::GOSSIP_TAG);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advertisement::DEFAULT_LIFETIME;
    use crate::id::IdGenerator;
    use netsim::time::SimDuration;

    fn adv(ids: &mut IdGenerator, node: u32, name: &str, now: SimTime) -> PeerAdvertisement {
        PeerAdvertisement {
            peer: PeerId::generate(ids),
            node: NodeId(node),
            name: name.to_string(),
            cpu_gops: 1.0,
            accepts_tasks: true,
            published: now,
            lifetime: DEFAULT_LIFETIME,
        }
    }

    #[test]
    fn admit_then_expel_evicts_both_indices() {
        let mut ids = IdGenerator::new(1);
        let mut reg = PeerRegistry::new();
        let a = adv(&mut ids, 1, "alpha", SimTime::ZERO);
        let peer = a.peer;
        reg.admit(a, SimTime::ZERO);
        assert_eq!(reg.peer_count(), 1);
        assert!(reg.has_peer(peer));
        assert_eq!(reg.peer_of(NodeId(1)), Some(peer));
        assert!(reg.expel(peer));
        assert_eq!(reg.peer_count(), 0);
        assert_eq!(reg.peer_of(NodeId(1)), None);
        assert!(!reg.expel(peer), "double eviction is a no-op");
    }

    #[test]
    fn readmission_keeps_the_original_entry() {
        // A duplicate Join (retransmission) must not reset accumulated
        // stats/history: `admit` only inserts fresh entries.
        let mut ids = IdGenerator::new(2);
        let mut reg = PeerRegistry::new();
        let a = adv(&mut ids, 3, "beta", SimTime::ZERO);
        let peer = a.peer;
        reg.admit(a.clone(), SimTime::ZERO);
        reg.entry_mut(peer).unwrap().history.transfers_completed = 7;
        reg.admit(a, SimTime::ZERO + SimDuration::from_secs(9));
        assert_eq!(
            reg.entry_mut(peer).unwrap().history.transfers_completed,
            7,
            "re-join must not clear history"
        );
        assert_eq!(reg.peer_count(), 1);
    }

    #[test]
    fn candidate_views_sorted_and_federation_merged() {
        let mut ids = IdGenerator::new(3);
        let mut reg = PeerRegistry::new();
        reg.admit(adv(&mut ids, 5, "e", SimTime::ZERO), SimTime::ZERO);
        reg.admit(adv(&mut ids, 2, "b", SimTime::ZERO), SimTime::ZERO);
        // A remote peer on an unregistered node is merged…
        let remote = CandidateView {
            peer: PeerId::generate(&mut ids),
            node: NodeId(9),
            name: "remote".into(),
            cpu_gops: 1.0,
            snapshot: StatsSnapshot::empty(1.0),
            history: InteractionHistory::empty(),
        };
        reg.remote_peers.insert(remote.peer, remote.clone());
        // …but one shadowing a registered node is not.
        let shadow = CandidateView {
            node: NodeId(5),
            ..remote.clone()
        };
        reg.remote_peers.insert(PeerId::generate(&mut ids), shadow);
        let views = reg.candidate_views(SimTime::ZERO, 24);
        let nodes: Vec<u32> = views.iter().map(|v| v.node.0).collect();
        assert_eq!(nodes, vec![2, 5, 9], "sorted by node, shadow dropped");
    }

    #[test]
    fn reported_snapshot_overrides_queue_gauges() {
        let mut ids = IdGenerator::new(4);
        let mut reg = PeerRegistry::new();
        let a = adv(&mut ids, 1, "g", SimTime::ZERO);
        let peer = a.peer;
        reg.admit(a, SimTime::ZERO);
        let mut reported = StatsSnapshot::empty(1.0);
        reported.inbox_now = 11.0;
        reported.outbox_avg = 2.5;
        reg.entry_mut(peer).unwrap().reported = Some(reported);
        let views = reg.candidate_views(SimTime::ZERO, 24);
        assert_eq!(views[0].snapshot.inbox_now, 11.0);
        assert_eq!(views[0].snapshot.outbox_avg, 2.5);
    }
}
