//! The transfer orchestration layer: outbound file transfers driven on the
//! shared [`SenderFlow`] state machine, the data pipes backing them, and
//! the broker-instructed peer-to-peer serves it awaits reports for.
//!
//! The petition → ack → stop-and-wait window/record invariants live in
//! [`crate::sendflow`]; this layer adds the broker-only concerns around
//! them — pipes, peer statistics, selector feedback, task hand-off.

use std::collections::HashMap;

use netsim::engine::Context;
use netsim::node::NodeId;
use netsim::time::SimTime;
use netsim::trace::{SpanKind, TraceEventKind};

use crate::filetransfer::FileMeta;
use crate::id::{ContentId, PeerId, PipeId, TransferId};
use crate::message::OverlayMsg;
use crate::pipe::PipeRegistry;
use crate::records::RecordSink;
use crate::selector::{Purpose, SelectionOutcome};
use crate::sendflow::SenderFlow;

use super::counters::BrokerCounters;
use super::registry::Holding;
use super::retry::RetryKind;
use super::Broker;

/// Outbound transfer state: the shared sender flow, the open data pipes,
/// and the count of instructed peer-to-peer serves still awaiting reports.
pub(crate) struct TransferOrchestrator {
    /// Live outbound transfers on the shared sender-side state machine.
    pub(crate) flows: SenderFlow,
    /// Open unicast pipes: one data pipe per live outbound transfer.
    pub(crate) pipes: PipeRegistry,
    /// Data pipe backing each live outbound transfer.
    pub(crate) pipe_for: HashMap<TransferId, PipeId>,
    /// Peer-to-peer transfers we instructed and are awaiting reports for.
    pub(crate) instructed_pending: u32,
}

impl TransferOrchestrator {
    pub(crate) fn new(sink: RecordSink) -> Self {
        let mut flows = SenderFlow::new();
        flows.set_sink(sink);
        TransferOrchestrator {
            flows,
            pipes: PipeRegistry::new(),
            pipe_for: HashMap::new(),
            instructed_pending: 0,
        }
    }
}

impl Broker {
    pub(crate) fn start_transfer(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        to: NodeId,
        size_bytes: u64,
        num_parts: u32,
        label: &str,
        enqueued_at: SimTime,
    ) -> TransferId {
        let now = ctx.now();
        let id = TransferId::generate(&mut self.ids);
        let file = FileMeta {
            content: ContentId::generate(&mut self.ids),
            name: label.to_string(),
            size_bytes,
        };
        let outbound =
            crate::filetransfer::OutboundTransfer::new(id, file.clone(), to, num_parts, now);
        let actual_parts = outbound.num_parts();
        let to_name = self.registry.display_name(ctx, to);
        self.transfers.flows.begin(outbound, to_name, now);
        if let Some(peer) = self.registry.peer_of(to) {
            if let Some(entry) = self.registry.entry_mut(peer) {
                entry.stats.pending_transfers += 1;
                entry.stats.outbox.incr(now);
                entry.history.queued_bytes += size_bytes;
            }
            // Open the transfer's data pipe (the JXTA unicast channel the
            // parts notionally flow through); closed in finish_transfer.
            let pipe = self.transfers.pipes.open(
                &mut self.ids,
                peer,
                to,
                label,
                now,
                self.cfg.transfer_timeout,
            );
            self.transfers.pipe_for.insert(id, pipe);
            if ctx.trace_enabled() {
                ctx.trace_event(TraceEventKind::PipeOpened {
                    pipe: pipe.raw(),
                    node: to,
                });
            }
        }
        if ctx.trace_enabled() {
            ctx.trace_event(TraceEventKind::SpanBegin {
                span: SpanKind::Transfer,
                key: id.raw(),
            });
            if enqueued_at < now {
                ctx.trace_event(TraceEventKind::TransferQueued {
                    transfer: id.raw(),
                    enqueued_at,
                });
            }
            ctx.trace_event(TraceEventKind::PetitionSent {
                transfer: id.raw(),
                to,
                bytes: size_bytes,
                parts: actual_parts,
            });
        }
        ctx.send(
            to,
            OverlayMsg::FilePetition {
                transfer: id,
                file,
                num_parts: actual_parts,
                sent_at: now,
            },
        );
        self.arm_retry(ctx, id, RetryKind::Petition, 1);
        let tag = self.retries.arm_watchdog(id);
        ctx.schedule_timer(self.cfg.transfer_timeout, tag);
        self.bump(ctx, |c| c.transfers_started);
        id
    }

    pub(crate) fn send_part(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        transfer: TransferId,
        to: NodeId,
        index: u32,
        size: u64,
    ) {
        let now = ctx.now();
        self.transfers
            .flows
            .note_part_sent(transfer, index, size, now);
        if let Some(&pipe) = self.transfers.pipe_for.get(&transfer) {
            self.transfers.pipes.account(pipe, size);
        }
        if ctx.trace_enabled() {
            ctx.trace_event(TraceEventKind::PartSent {
                transfer: transfer.raw(),
                index,
                bytes: size,
            });
        }
        ctx.send(
            to,
            OverlayMsg::FilePart {
                transfer,
                index,
                size,
            },
        );
        self.arm_retry(ctx, transfer, RetryKind::Part { index, size }, 1);
    }

    pub(crate) fn finish_transfer(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        transfer: TransferId,
        completed: bool,
    ) {
        let now = ctx.now();
        let Some(outbound) = self.transfers.flows.finish(transfer) else {
            return;
        };
        let to = outbound.to;
        let size = outbound.file.size_bytes;
        if let Some(pipe) = self.transfers.pipe_for.remove(&transfer) {
            if let Some(ep) = self.transfers.pipes.close(pipe) {
                if ctx.trace_enabled() {
                    ctx.trace_event(TraceEventKind::PipeClosed {
                        pipe: pipe.raw(),
                        messages: ep.messages,
                        bytes: ep.bytes,
                    });
                }
            }
        }
        if ctx.trace_enabled() {
            ctx.trace_event(TraceEventKind::TransferCompleted {
                transfer: transfer.raw(),
                ok: completed,
            });
            ctx.trace_event(TraceEventKind::SpanEnd {
                span: SpanKind::Transfer,
                key: transfer.raw(),
                ok: completed,
            });
        }
        ctx.send(
            to,
            if completed {
                OverlayMsg::TransferComplete { transfer }
            } else {
                OverlayMsg::TransferCancel { transfer }
            },
        );
        let (elapsed, throughput) = self
            .transfers
            .flows
            .stamp_finished(transfer, now, completed);
        if let Some(peer) = self.registry.peer_of(to) {
            if let Some(entry) = self.registry.entry_mut(peer) {
                entry.stats.pending_transfers = entry.stats.pending_transfers.saturating_sub(1);
                entry.stats.outbox.decr(now);
                entry.stats.record_file_send(completed);
                entry.history.queued_bytes = entry.history.queued_bytes.saturating_sub(size);
                if completed {
                    entry.history.transfers_completed += 1;
                    if let Some(bps) = throughput {
                        entry.history.observe_throughput(bps, self.cfg.ewma_alpha);
                    }
                } else {
                    entry.history.transfers_cancelled += 1;
                }
            }
        }
        self.selection.on_outcome(&SelectionOutcome {
            node: to,
            success: completed,
            elapsed_secs: elapsed,
            bytes: size,
        });
        self.bump(
            ctx,
            if completed {
                |c: &BrokerCounters| c.transfers_completed
            } else {
                |c: &BrokerCounters| c.transfers_cancelled
            },
        );

        // If this transfer was a task's input shipment, advance the task.
        if let Some(task_id) = self.tasks.input_transfer_to_task.remove(&transfer) {
            if completed {
                self.offer_task(ctx, task_id);
            } else {
                self.fail_task(ctx, task_id);
            }
        }
        self.maybe_stop(ctx);
    }

    pub(crate) fn on_petition_ack(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        from: NodeId,
        transfer: TransferId,
        accepted: bool,
        petition_sent_at: SimTime,
        handled_at: SimTime,
    ) {
        let now = ctx.now();
        // A duplicate ack (retransmitted petition) must not skew the
        // records or the latency history.
        let first_ack = self.transfers.flows.is_awaiting_ack(transfer);
        if ctx.trace_enabled() {
            ctx.trace_event(TraceEventKind::PetitionAcked {
                transfer: transfer.raw(),
                accepted,
            });
        }
        if first_ack {
            self.transfers
                .flows
                .note_ack_times(transfer, handled_at, now);
            let petition_latency = handled_at.duration_since(petition_sent_at).as_secs_f64();
            if let Some(peer) = self.registry.peer_of(from) {
                if let Some(entry) = self.registry.entry_mut(peer) {
                    entry
                        .history
                        .observe_petition(petition_latency, self.cfg.ewma_alpha);
                    entry.stats.record_message(now, true);
                }
            }
        }
        let next = self.transfers.flows.on_ack(transfer, accepted);
        match next {
            Some((index, size)) => self.send_part(ctx, transfer, from, index, size),
            None => {
                if !accepted {
                    self.finish_transfer(ctx, transfer, false);
                }
            }
        }
    }

    pub(crate) fn on_part_confirm(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        from: NodeId,
        transfer: TransferId,
        index: u32,
    ) {
        let now = ctx.now();
        // First-confirm-wins: validate against the stop-and-wait window
        // BEFORE touching the record. A late duplicate confirm
        // (retransmitted part → receiver confirmed twice) must not
        // overwrite the original confirmed_at — that inflates Fig 4's
        // last_part_secs.
        let accepted = self.transfers.flows.accepts_confirm(transfer, index);
        if ctx.trace_enabled() {
            ctx.trace_event(TraceEventKind::PartConfirmed {
                transfer: transfer.raw(),
                index,
                accepted,
            });
        }
        if accepted {
            self.transfers.flows.note_confirm(transfer, index, now);
        }
        let outcome = self.transfers.flows.on_confirm(transfer, index);
        match outcome {
            Some((Some((next_index, size)), _)) => {
                self.send_part(ctx, transfer, from, next_index, size);
            }
            Some((None, true)) => self.finish_transfer(ctx, transfer, true),
            _ => {}
        }
    }

    pub(crate) fn on_file_request(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        requester: PeerId,
        name: String,
    ) {
        let Some(requester_node) = self.registry.node_of(requester) else {
            return;
        };
        let holders: Vec<Holding> = self
            .registry
            .holdings(&name)
            .map(|hs| {
                hs.iter()
                    .filter(|h| h.node != requester_node && self.registry.has_peer(h.peer))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        if holders.is_empty() {
            self.bump(ctx, |c| c.file_requests_unserved);
            return;
        }
        let nodes: Vec<NodeId> = holders.iter().map(|h| h.node).collect();
        let size = holders[0].size;
        let Some(owner_node) =
            self.select_among(ctx, &nodes, Purpose::FileTransfer { bytes: size })
        else {
            return;
        };
        let holding = holders
            .iter()
            .find(|h| h.node == owner_node)
            .expect("chosen among holders");
        ctx.send(
            owner_node,
            OverlayMsg::TransferInstruction {
                to_node: requester_node,
                file: FileMeta {
                    content: holding.content,
                    name,
                    size_bytes: holding.size,
                },
                num_parts: self.cfg.request_parts,
            },
        );
        self.transfers.instructed_pending += 1;
        self.bump(ctx, |c| c.file_requests_served);
    }

    pub(crate) fn on_transfer_report(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        from: NodeId,
        ok: bool,
        elapsed_secs: f64,
        bytes: u64,
    ) {
        self.transfers.instructed_pending = self.transfers.instructed_pending.saturating_sub(1);
        if let Some(peer) = self.registry.peer_of(from) {
            if let Some(entry) = self.registry.entry_mut(peer) {
                entry.stats.record_file_send(ok);
                if ok && elapsed_secs > 0.0 {
                    entry
                        .history
                        .observe_throughput(bytes as f64 / elapsed_secs, self.cfg.ewma_alpha);
                    entry.history.transfers_completed += 1;
                } else if !ok {
                    entry.history.transfers_cancelled += 1;
                }
            }
        }
        self.selection.on_outcome(&SelectionOutcome {
            node: from,
            success: ok,
            elapsed_secs,
            bytes,
        });
        self.maybe_stop(ctx);
    }
}
