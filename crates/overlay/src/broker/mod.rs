//! The Broker peer: governor of the P2P network (paper §3).
//!
//! The broker admits clients, aggregates per-peer statistics, coordinates
//! chunked file transfers (petition → ack → stop-and-wait parts), manages
//! executable tasks (ship input → offer → accept → result), and — crucially
//! for this study — consults a pluggable [`PeerSelector`] whenever a command
//! says "send this to the *selected* peer".
//!
//! Experiments drive the broker through a command script: a list of
//! `(delay, command)` pairs executed at the scheduled times.
//!
//! The broker is a layered subsystem; the [`Broker`] actor itself is only a
//! message/timer dispatcher over per-concern layers, each in its own
//! submodule:
//!
//! * [`registry`] — [`registry::PeerRegistry`]: peer entries, statistics
//!   snapshots, published content, federation roster, interned host names.
//! * [`schedule`] — [`schedule::CommandSchedule`]: deferred scripted
//!   commands, their retry budget, and first-due instants.
//! * [`selection`] — [`selection::SelectionService`]: the single place a
//!   [`PeerSelector`] is consulted, its decision recorded and traced, and
//!   outcome feedback delivered.
//! * [`transfer`] — [`transfer::TransferOrchestrator`]: outbound transfers
//!   on the shared [`crate::sendflow::SenderFlow`] state machine, plus the
//!   data pipes backing them.
//! * [`retry`] — [`retry::RetryEngine`]: retransmission probes and
//!   transfer/task watchdogs.
//! * [`tasks`] — [`tasks::TaskBook`]: task lifecycle and client-submitted
//!   jobs.
//! * [`counters`] — [`counters::BrokerCounters`]: pre-resolved protocol
//!   counter handles.

pub(crate) mod counters;
pub(crate) mod registry;
pub(crate) mod retry;
pub(crate) mod schedule;
pub(crate) mod selection;
pub(crate) mod tasks;
pub(crate) mod transfer;

#[cfg(test)]
mod tests;
#[cfg(test)]
mod tests_lossy;

use netsim::engine::{Actor, Context, TimerId};
use netsim::node::NodeId;
use netsim::time::{SimDuration, SimTime};

use crate::group::GroupRegistry;
use crate::id::IdGenerator;
use crate::message::OverlayMsg;
use crate::records::RecordSink;
use crate::selector::{PeerSelector, Purpose};
use crate::task::TaskPhase;

use counters::BrokerCounters;
use registry::PeerRegistry;
use retry::RetryEngine;
use schedule::CommandSchedule;
use selection::SelectionService;
use tasks::TaskBook;
use transfer::TransferOrchestrator;

pub(crate) const CMD_TAG_BASE: u64 = 1_000_000;
pub(crate) const WATCHDOG_TAG_BASE: u64 = 2_000_000;
pub(crate) const GOSSIP_TAG: u64 = 3_000_000;
pub(crate) const TASK_WATCHDOG_TAG_BASE: u64 = 4_000_000;
pub(crate) const RETRY_TAG_BASE: u64 = 5_000_000;
/// Scripted-outage timers: `+0` crashes the broker, `+1` restarts it.
pub(crate) const FEDERATION_TAG_BASE: u64 = 6_000_000;
pub(crate) const CMD_RETRY_DELAY: SimDuration = SimDuration::from_millis(500);
pub(crate) const CMD_MAX_RETRIES: u32 = 240;

/// Retransmission policy for lossy networks: the sender re-sends the
/// petition or the in-flight part when no answer arrives within `timeout`,
/// up to `max_attempts` sends total, then cancels the transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// How long to wait for the ack/confirm before retransmitting.
    pub timeout: SimDuration,
    /// Total send attempts per message (1 = no retries).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: SimDuration::from_secs(120),
            max_attempts: 4,
        }
    }
}

/// Who should receive a piece of work.
#[derive(Debug, Clone, PartialEq)]
pub enum TargetSpec {
    /// A specific host.
    Node(NodeId),
    /// Every registered client (one work item per client).
    AllClients,
    /// Whichever peer the configured [`PeerSelector`] picks.
    Selected,
}

/// One scripted broker action.
#[derive(Debug, Clone, PartialEq)]
pub enum BrokerCommand {
    /// Transfer a synthetic file of `size_bytes`, split into `num_parts`.
    DistributeFile {
        /// Destination(s).
        target: TargetSpec,
        /// File size in bytes.
        size_bytes: u64,
        /// Number of parts (1 = send whole).
        num_parts: u32,
        /// Label recorded with the transfer (figures key on it).
        label: String,
    },
    /// Run a task of `work_gops`, optionally shipping `input_bytes` first.
    SubmitTask {
        /// Executor(s).
        target: TargetSpec,
        /// Compute demand in giga-ops.
        work_gops: f64,
        /// Input to ship before execution (0 = none).
        input_bytes: u64,
        /// Parts for the input shipment.
        input_parts: u32,
        /// Label recorded with the task.
        label: String,
    },
    /// Send an instant message (exercises the messaging primitive).
    SendInstant {
        /// Destination(s).
        target: TargetSpec,
        /// Body.
        text: String,
    },
}

/// Broker construction parameters.
pub struct BrokerConfig {
    /// Scripted actions: `(delay from start, command)`.
    pub commands: Vec<(SimDuration, BrokerCommand)>,
    /// Selection model used for [`TargetSpec::Selected`].
    pub selector: Option<Box<dyn PeerSelector>>,
    /// Watchdog: cancel transfers that exceed this duration.
    pub transfer_timeout: SimDuration,
    /// Watchdog: fail tasks that produce no result within this duration
    /// (measured from the offer).
    pub task_timeout: SimDuration,
    /// EWMA smoothing for observed history.
    pub ewma_alpha: f64,
    /// `k` for the "last k hours" criterion when snapshotting stats.
    pub stats_k_hours: usize,
    /// Seed for id generation.
    pub id_seed: u64,
    /// Stop the whole simulation once all scripted work completes.
    pub stop_when_idle: bool,
    /// Parts used when instructing peer-to-peer transfers for file requests.
    pub request_parts: u32,
    /// Fellow broker hosts to exchange rosters with. Crate-private: the
    /// federation knobs are wired together through
    /// [`crate::federation::FederationBuilder`], which validates them as
    /// a set (see [`crate::federation::Federation::configure`]).
    pub(crate) peer_brokers: Vec<NodeId>,
    /// Roster-gossip period (set via the federation builder).
    pub(crate) gossip_interval: SimDuration,
    /// Stale-stat tolerance: gossiped candidate views older than this are
    /// invisible to selection, and a fellow broker silent longer than
    /// this is presumed dead. `None` disables both filters.
    pub(crate) staleness_bound: Option<SimDuration>,
    /// Broker-to-broker hop budget for petitions with no local candidate
    /// (0 = never forward).
    pub(crate) forward_hops: u32,
    /// Scripted outage: `(crash at, optional restart at)`, both measured
    /// from simulation start.
    pub(crate) outage: Option<(SimDuration, Option<SimDuration>)>,
    /// Optional retransmission policy (None = rely on watchdogs only;
    /// appropriate when the transport is loss-free, i.e. TCP-like).
    pub retry: Option<RetryPolicy>,
}

impl BrokerConfig {
    /// A broker with no scripted commands.
    pub fn new(id_seed: u64) -> Self {
        BrokerConfig {
            commands: Vec::new(),
            selector: None,
            transfer_timeout: SimDuration::from_mins(90),
            task_timeout: SimDuration::from_mins(120),
            ewma_alpha: 0.3,
            stats_k_hours: 24,
            id_seed,
            stop_when_idle: true,
            request_parts: 16,
            peer_brokers: Vec::new(),
            gossip_interval: SimDuration::from_secs(60),
            staleness_bound: None,
            forward_hops: 0,
            outage: None,
            retry: None,
        }
    }

    /// Schedules a command `delay` after start.
    pub fn at(mut self, delay: SimDuration, cmd: BrokerCommand) -> Self {
        self.commands.push((delay, cmd));
        self
    }

    /// Installs the selection model.
    pub fn with_selector(mut self, s: Box<dyn PeerSelector>) -> Self {
        self.selector = Some(s);
        self
    }
}

/// The broker actor: a thin dispatcher over the per-concern layers.
pub struct Broker {
    pub(crate) cfg: BrokerConfig,
    pub(crate) ids: IdGenerator,
    pub(crate) groups: GroupRegistry,
    pub(crate) registry: PeerRegistry,
    pub(crate) schedule: CommandSchedule,
    pub(crate) selection: SelectionService,
    pub(crate) transfers: TransferOrchestrator,
    pub(crate) retries: RetryEngine,
    pub(crate) tasks: TaskBook,
    pub(crate) counters: Option<BrokerCounters>,
    pub(crate) sink: RecordSink,
    /// Whether a scripted outage currently has this broker down: every
    /// inbound message is dropped and only the restart timer (plus the
    /// command-replay loop) is serviced.
    pub(crate) down: bool,
    /// Rotation cursor over live fellow brokers for petition forwarding.
    pub(crate) forward_rr: usize,
}

impl Broker {
    /// Creates a broker writing records into `sink`. The config's command
    /// script and selector are moved into their owning layers.
    pub fn new(mut cfg: BrokerConfig, sink: RecordSink) -> Self {
        let id_seed = cfg.id_seed;
        let commands = std::mem::take(&mut cfg.commands);
        let selector = cfg.selector.take();
        Broker {
            ids: IdGenerator::new(id_seed),
            groups: GroupRegistry::new(id_seed ^ 0x6120),
            registry: PeerRegistry::new(),
            schedule: CommandSchedule::new(commands),
            selection: SelectionService::new(selector),
            transfers: TransferOrchestrator::new(sink.clone()),
            retries: RetryEngine::new(),
            tasks: TaskBook::new(),
            counters: None,
            sink,
            down: false,
            forward_rr: 0,
            cfg,
        }
    }

    /// Number of currently open data pipes (one per live transfer).
    pub fn open_pipe_count(&self) -> usize {
        self.transfers.pipes.len()
    }

    /// Number of registered peers.
    pub fn peer_count(&self) -> usize {
        self.registry.peer_count()
    }

    fn execute_command(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        cmd: BrokerCommand,
        enqueued_at: SimTime,
    ) {
        match cmd {
            BrokerCommand::DistributeFile {
                target,
                size_bytes,
                num_parts,
                label,
            } => {
                let purpose = Purpose::FileTransfer { bytes: size_bytes };
                let targets = self.resolve_targets(ctx, &target, purpose);
                if targets.is_empty()
                    && matches!(target, TargetSpec::Selected)
                    && self.cfg.forward_hops > 0
                {
                    // No viable local candidate: hand the petition to a
                    // fellow broker under the configured hop budget.
                    let me = ctx.self_id();
                    self.forward_petition(
                        ctx,
                        me,
                        None,
                        self.cfg.forward_hops,
                        size_bytes,
                        num_parts,
                        &label,
                        enqueued_at,
                    );
                    return;
                }
                for node in targets {
                    self.start_transfer(ctx, node, size_bytes, num_parts, &label, enqueued_at);
                }
            }
            BrokerCommand::SubmitTask {
                target,
                work_gops,
                input_bytes,
                input_parts,
                label,
            } => {
                let purpose = Purpose::TaskExecution {
                    work_gops: work_gops as u64,
                    input_bytes,
                };
                for node in self.resolve_targets(ctx, &target, purpose) {
                    self.submit_task(
                        ctx,
                        node,
                        work_gops,
                        input_bytes,
                        input_parts,
                        &label,
                        enqueued_at,
                    );
                }
            }
            BrokerCommand::SendInstant { target, text } => {
                let purpose = Purpose::FileTransfer {
                    bytes: text.len() as u64,
                };
                // Intern the body once; each recipient gets a refcount
                // bump instead of a fresh String allocation.
                let body: std::sync::Arc<str> = std::sync::Arc::from(text.as_str());
                for node in self.resolve_targets(ctx, &target, purpose) {
                    ctx.send(node, OverlayMsg::Instant { text: body.clone() });
                }
            }
        }
    }

    pub(crate) fn work_outstanding(&self) -> bool {
        self.schedule.pending() > 0
            || self.transfers.instructed_pending > 0
            || !self.transfers.flows.is_empty()
            || self
                .tasks
                .tasks
                .values()
                .any(|t| !matches!(t.phase, TaskPhase::Completed | TaskPhase::Failed))
    }

    pub(crate) fn maybe_stop(&mut self, ctx: &mut Context<OverlayMsg>) {
        if self.cfg.stop_when_idle && !self.work_outstanding() {
            ctx.stop();
        }
    }

    /// Scripted crash: every piece of volatile state — registry, in-flight
    /// transfers, retransmission probes, tasks, groups — dies with the
    /// process. The retry engine keeps its tag counters (a restarted
    /// process must not reissue timer tags that stale timers still carry).
    fn crash(&mut self, ctx: &mut Context<OverlayMsg>) {
        if self.down {
            return;
        }
        self.down = true;
        self.registry = PeerRegistry::new();
        self.transfers = TransferOrchestrator::new(self.sink.clone());
        self.retries.clear();
        self.tasks = TaskBook::new();
        self.groups = GroupRegistry::new(self.cfg.id_seed ^ 0x6120);
        ctx.trace_event(netsim::trace::TraceEventKind::BrokerDown);
    }

    /// Scripted restart: the broker comes back empty-handed — clients must
    /// re-join and gossip must repopulate the remote roster.
    fn restart(&mut self, ctx: &mut Context<OverlayMsg>) {
        if !self.down {
            return;
        }
        self.down = false;
        if !self.cfg.peer_brokers.is_empty() {
            // The gossip timer that fired while down was swallowed; re-arm.
            ctx.schedule_timer(self.cfg.gossip_interval, GOSSIP_TAG);
        }
        ctx.trace_event(netsim::trace::TraceEventKind::BrokerUp);
    }
}

impl Actor<OverlayMsg> for Broker {
    fn on_start(&mut self, ctx: &mut Context<OverlayMsg>) {
        self.counters = Some(BrokerCounters::resolve(ctx.metrics()));
        for (i, delay) in self.schedule.delays() {
            ctx.schedule_timer(delay, CMD_TAG_BASE + i as u64);
        }
        if !self.cfg.peer_brokers.is_empty() {
            ctx.schedule_timer(self.cfg.gossip_interval, GOSSIP_TAG);
        }
        if let Some((down_at, restart_at)) = self.cfg.outage {
            ctx.schedule_timer(down_at, FEDERATION_TAG_BASE);
            if let Some(at) = restart_at {
                ctx.schedule_timer(at, FEDERATION_TAG_BASE + 1);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<OverlayMsg>, from: NodeId, msg: OverlayMsg) {
        if self.down {
            // A crashed broker answers nothing — not even Ping, which is
            // exactly how clients detect the outage and re-home.
            return;
        }
        match msg {
            OverlayMsg::Join(adv) => self.on_join(ctx, from, adv),
            OverlayMsg::Leave { peer } => self.on_leave(ctx, peer),
            OverlayMsg::DiscoverPeers => self.on_discover_peers(ctx, from),
            OverlayMsg::StatsReport { peer, snapshot } => self.on_stats_report(ctx, peer, snapshot),
            OverlayMsg::PetitionAck {
                transfer,
                accepted,
                petition_sent_at,
                handled_at,
            } => self.on_petition_ack(ctx, from, transfer, accepted, petition_sent_at, handled_at),
            OverlayMsg::PartConfirm { transfer, index } => {
                self.on_part_confirm(ctx, from, transfer, index)
            }
            OverlayMsg::TaskAccept { task } => self.on_task_accept(ctx, task),
            OverlayMsg::TaskReject { task } => self.on_task_reject(ctx, task),
            OverlayMsg::TaskResult {
                task,
                success,
                exec_secs,
            } => self.on_task_result(ctx, task, success, exec_secs),
            OverlayMsg::PublishContent(adv) if self.registry.has_peer(adv.owner) => {
                self.on_publish_content(ctx, from, adv)
            }
            OverlayMsg::DiscoverContent { pattern } => self.on_discover_content(ctx, from, pattern),
            OverlayMsg::FileRequest { requester, name } => {
                self.on_file_request(ctx, requester, name)
            }
            OverlayMsg::TransferReport {
                ok,
                elapsed_secs,
                bytes,
                ..
            } => self.on_transfer_report(ctx, from, ok, elapsed_secs, bytes),
            OverlayMsg::JobSubmit {
                submitter,
                work_gops,
                input_bytes,
                input_parts,
                label,
            } => self.on_job_submit(ctx, submitter, work_gops, input_bytes, input_parts, label),
            OverlayMsg::BrokerGossip {
                from_broker,
                sent_at,
                roster,
            } => self.on_broker_gossip(ctx, from_broker, sent_at, roster),
            OverlayMsg::PetitionForward {
                origin,
                hops_left,
                size_bytes,
                num_parts,
                label,
                enqueued_at,
            } => self.on_petition_forward(
                ctx,
                from,
                origin,
                hops_left,
                size_bytes,
                num_parts,
                label,
                enqueued_at,
            ),
            OverlayMsg::Ping { nonce, sent_at } => {
                ctx.send(from, OverlayMsg::Pong { nonce, sent_at });
            }
            // Remaining messages are not addressed to brokers.
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<OverlayMsg>, _timer: TimerId, tag: u64) {
        if tag >= FEDERATION_TAG_BASE {
            match tag - FEDERATION_TAG_BASE {
                0 => self.crash(ctx),
                _ => self.restart(ctx),
            }
            return;
        }
        if self.down {
            // Scripted commands keep re-arming through the outage so they
            // replay after the restart; every other timer dies silently.
            if (CMD_TAG_BASE..WATCHDOG_TAG_BASE).contains(&tag) {
                ctx.schedule_timer(CMD_RETRY_DELAY, tag);
            }
            return;
        }
        if tag == GOSSIP_TAG {
            self.on_gossip_timer(ctx);
            return;
        }
        if tag >= RETRY_TAG_BASE {
            self.on_retry_timer(ctx, tag);
            return;
        }
        if tag >= TASK_WATCHDOG_TAG_BASE {
            self.on_task_watchdog(ctx, tag);
            return;
        }
        if tag >= WATCHDOG_TAG_BASE {
            self.on_transfer_watchdog(ctx, tag);
            return;
        }
        if tag >= CMD_TAG_BASE {
            self.on_command_due(ctx, tag);
        }
    }
}
