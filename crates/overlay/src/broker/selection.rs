//! The selection layer: the single place where a [`PeerSelector`] is
//! consulted, its decision recorded (and traced when tracing is on), and
//! outcome feedback delivered back to the model.
//!
//! All broker-side peer choices flow through the two entry points here —
//! [`Broker::resolve_targets`] for scripted commands and
//! [`Broker::select_among`] for choices restricted to a candidate subset
//! (file requests with several owners, client-submitted jobs).

use netsim::engine::Context;
use netsim::node::NodeId;
use netsim::trace::TraceEventKind;

use crate::message::OverlayMsg;
use crate::records::SelectionRecord;
use crate::selector::{CandidateView, PeerSelector, Purpose, SelectionOutcome, SelectionRequest};

use super::{Broker, TargetSpec};

/// Owns the pluggable selection model and feeds outcomes back to it.
pub(crate) struct SelectionService {
    pub(crate) selector: Option<Box<dyn PeerSelector>>,
}

impl SelectionService {
    pub(crate) fn new(selector: Option<Box<dyn PeerSelector>>) -> Self {
        SelectionService { selector }
    }

    /// Delivers outcome feedback (transfer/task finished) to the model.
    pub(crate) fn on_outcome(&mut self, outcome: &SelectionOutcome) {
        if let Some(selector) = self.selector.as_mut() {
            selector.on_outcome(outcome);
        }
    }
}

impl Broker {
    pub(crate) fn resolve_targets(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        target: &TargetSpec,
        purpose: Purpose,
    ) -> Vec<NodeId> {
        match target {
            TargetSpec::Node(n) => vec![*n],
            TargetSpec::AllClients => self.registry.registered_nodes(),
            TargetSpec::Selected => {
                let now = ctx.now();
                let candidates = self.registry.candidate_views(now, self.cfg.stats_k_hours);
                if candidates.is_empty() {
                    return Vec::new();
                }
                let Some(selector) = self.selection.selector.as_mut() else {
                    return Vec::new();
                };
                let req = SelectionRequest {
                    now,
                    purpose,
                    candidates: &candidates,
                };
                match selector.select(&req) {
                    Some(i) if i < candidates.len() => {
                        let chosen = &candidates[i];
                        self.sink.with(|log| {
                            log.selections.push(SelectionRecord {
                                at: now,
                                model: selector.name().to_string(),
                                chosen: chosen.node,
                                chosen_name: chosen.name.clone(),
                                candidates: candidates.len(),
                            })
                        });
                        if ctx.trace_enabled() {
                            trace_selection(ctx, &mut **selector, &req, chosen.node);
                        }
                        vec![chosen.node]
                    }
                    _ => Vec::new(),
                }
            }
        }
    }

    /// Selection restricted to `nodes` (used for file requests with several
    /// owners). Falls back to least-pending-transfers when no selector is
    /// installed. Records the decision when a selector was consulted.
    pub(crate) fn select_among(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        nodes: &[NodeId],
        purpose: Purpose,
    ) -> Option<NodeId> {
        let now = ctx.now();
        if nodes.is_empty() {
            return None;
        }
        if nodes.len() == 1 {
            return Some(nodes[0]);
        }
        let candidates: Vec<CandidateView> = self
            .registry
            .candidate_views(now, self.cfg.stats_k_hours)
            .into_iter()
            .filter(|v| nodes.contains(&v.node))
            .collect();
        if let Some(selector) = self.selection.selector.as_mut() {
            if !candidates.is_empty() {
                let req = SelectionRequest {
                    now,
                    purpose,
                    candidates: &candidates,
                };
                if let Some(i) = selector.select(&req) {
                    if i < candidates.len() {
                        let chosen = &candidates[i];
                        let record = SelectionRecord {
                            at: now,
                            model: selector.name().to_string(),
                            chosen: chosen.node,
                            chosen_name: chosen.name.clone(),
                            candidates: candidates.len(),
                        };
                        self.sink.with(|log| log.selections.push(record));
                        if ctx.trace_enabled() {
                            trace_selection(ctx, &mut **selector, &req, chosen.node);
                        }
                        return Some(chosen.node);
                    }
                }
            }
        }
        // Fallback: least currently-pending transfers, lowest node id.
        candidates
            .iter()
            .min_by(|a, b| {
                a.snapshot
                    .pending_transfers
                    .partial_cmp(&b.snapshot.pending_transfers)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.node.cmp(&b.node))
            })
            .map(|v| v.node)
            .or_else(|| nodes.first().copied())
    }
}

/// Emits a [`TraceEventKind::SelectionDecided`] event with per-candidate
/// costs. Callers must check `ctx.trace_enabled()` first — cost extraction
/// re-runs the model's scoring pass, which is fine for observability (the
/// pass is read-only w.r.t. the simulation) but wasted work when disabled.
fn trace_selection(
    ctx: &mut Context<OverlayMsg>,
    selector: &mut dyn PeerSelector,
    req: &SelectionRequest<'_>,
    chosen: NodeId,
) {
    let costs = selector
        .candidate_costs(req)
        .map(|cs| req.candidates.iter().map(|c| c.node).zip(cs).collect())
        .unwrap_or_default();
    ctx.trace_event(TraceEventKind::SelectionDecided {
        model: selector.name().to_string(),
        chosen,
        costs,
    });
}
