//! The selection layer: the single place where a [`PeerSelector`] is
//! consulted, its decision recorded (and traced when tracing is on), and
//! outcome feedback delivered back to the model.
//!
//! All broker-side peer choices flow through the two entry points here —
//! [`Broker::resolve_targets`] for scripted commands and
//! [`Broker::select_among`] for choices restricted to a candidate subset
//! (file requests with several owners, client-submitted jobs).

use netsim::engine::Context;
use netsim::node::NodeId;
use netsim::time::SimTime;
use netsim::trace::TraceEventKind;

use crate::message::OverlayMsg;
use crate::records::SelectionRecord;
use crate::selector::{CandidateView, PeerSelector, Purpose, SelectionOutcome, SelectionRequest};

use super::{Broker, BrokerCommand, TargetSpec};

/// Owns the pluggable selection model and feeds outcomes back to it.
pub(crate) struct SelectionService {
    pub(crate) selector: Option<Box<dyn PeerSelector>>,
}

impl SelectionService {
    pub(crate) fn new(selector: Option<Box<dyn PeerSelector>>) -> Self {
        SelectionService { selector }
    }

    /// Delivers outcome feedback (transfer/task finished) to the model.
    pub(crate) fn on_outcome(&mut self, outcome: &SelectionOutcome) {
        if let Some(selector) = self.selector.as_mut() {
            selector.on_outcome(outcome);
        }
    }
}

impl Broker {
    pub(crate) fn resolve_targets(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        target: &TargetSpec,
        purpose: Purpose,
    ) -> Vec<NodeId> {
        match target {
            TargetSpec::Node(n) => vec![*n],
            TargetSpec::AllClients => self.registry.registered_nodes(),
            TargetSpec::Selected => {
                let now = ctx.now();
                let candidates = self.registry.candidate_views(
                    now,
                    self.cfg.stats_k_hours,
                    self.cfg.staleness_bound,
                );
                if candidates.is_empty() {
                    return Vec::new();
                }
                let Some(selector) = self.selection.selector.as_mut() else {
                    return Vec::new();
                };
                let req = SelectionRequest {
                    now,
                    purpose,
                    candidates: &candidates,
                };
                match selector.select(&req) {
                    Some(i) if i < candidates.len() => {
                        let chosen = &candidates[i];
                        self.sink.with(|log| {
                            log.selections.push(SelectionRecord {
                                at: now,
                                model: selector.name().to_string(),
                                chosen: chosen.node,
                                chosen_name: chosen.name.clone(),
                                candidates: candidates.len(),
                            })
                        });
                        if ctx.trace_enabled() {
                            trace_selection(ctx, &mut **selector, &req, chosen.node);
                        }
                        vec![chosen.node]
                    }
                    _ => Vec::new(),
                }
            }
        }
    }

    /// Selection restricted to `nodes` (used for file requests with several
    /// owners). Falls back to least-pending-transfers when no selector is
    /// installed. Records the decision when a selector was consulted.
    pub(crate) fn select_among(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        nodes: &[NodeId],
        purpose: Purpose,
    ) -> Option<NodeId> {
        let now = ctx.now();
        if nodes.is_empty() {
            return None;
        }
        if nodes.len() == 1 {
            return Some(nodes[0]);
        }
        let candidates: Vec<CandidateView> = self
            .registry
            .candidate_views(now, self.cfg.stats_k_hours, self.cfg.staleness_bound)
            .into_iter()
            .filter(|v| nodes.contains(&v.node))
            .collect();
        if let Some(selector) = self.selection.selector.as_mut() {
            if !candidates.is_empty() {
                let req = SelectionRequest {
                    now,
                    purpose,
                    candidates: &candidates,
                };
                if let Some(i) = selector.select(&req) {
                    if i < candidates.len() {
                        let chosen = &candidates[i];
                        let record = SelectionRecord {
                            at: now,
                            model: selector.name().to_string(),
                            chosen: chosen.node,
                            chosen_name: chosen.name.clone(),
                            candidates: candidates.len(),
                        };
                        self.sink.with(|log| log.selections.push(record));
                        if ctx.trace_enabled() {
                            trace_selection(ctx, &mut **selector, &req, chosen.node);
                        }
                        return Some(chosen.node);
                    }
                }
            }
        }
        // Fallback: least currently-pending transfers, lowest node id.
        candidates
            .iter()
            .min_by(|a, b| {
                a.snapshot
                    .pending_transfers
                    .partial_cmp(&b.snapshot.pending_transfers)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.node.cmp(&b.node))
            })
            .map(|v| v.node)
            .or_else(|| nodes.first().copied())
    }
}

impl Broker {
    /// Whether this broker could hand a `Selected` file petition to a
    /// fellow broker instead of deferring it until a local peer joins.
    pub(crate) fn can_forward(&self, cmd: &BrokerCommand) -> bool {
        self.cfg.forward_hops > 0
            && !self.cfg.peer_brokers.is_empty()
            && matches!(
                cmd,
                BrokerCommand::DistributeFile {
                    target: TargetSpec::Selected,
                    ..
                }
            )
    }

    /// The silence bound after which a fellow broker is presumed dead:
    /// the staleness window when configured, otherwise three gossip
    /// rounds — the same tolerance selection applies to gossiped views.
    fn liveness_bound(&self) -> netsim::time::SimDuration {
        self.cfg
            .staleness_bound
            .unwrap_or(self.cfg.gossip_interval * 3)
    }

    /// Hands a `Selected` petition this broker could not place to a
    /// fellow broker believed alive, rotating over the roster so repeat
    /// forwards spread. `exclude` skips the broker a forward just came
    /// from; the origin is never a candidate (no boomerangs). Returns
    /// whether anyone was available to take it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn forward_petition(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        origin: NodeId,
        exclude: Option<NodeId>,
        hops_left: u32,
        size_bytes: u64,
        num_parts: u32,
        label: &str,
        enqueued_at: SimTime,
    ) -> bool {
        let now = ctx.now();
        let bound = self.liveness_bound();
        let candidates: Vec<NodeId> = self
            .cfg
            .peer_brokers
            .iter()
            .copied()
            .filter(|&b| {
                b != origin && Some(b) != exclude && self.registry.broker_alive(b, now, bound)
            })
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let to = candidates[self.forward_rr % candidates.len()];
        self.forward_rr = self.forward_rr.wrapping_add(1);
        ctx.trace_event(TraceEventKind::PetitionForwarded { to, hops_left });
        ctx.send(
            to,
            OverlayMsg::PetitionForward {
                origin,
                hops_left,
                size_bytes,
                num_parts,
                label: label.to_string(),
                enqueued_at,
            },
        );
        self.bump(ctx, |c| c.petitions_forwarded);
        true
    }

    /// Handles a forwarded petition: serve it from the local registry if
    /// selection finds a candidate, otherwise pass it along while hop
    /// budget remains. The origin's enqueue instant rides along, so the
    /// eventual transfer's petition latency includes every hop.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_petition_forward(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        from: NodeId,
        origin: NodeId,
        hops_left: u32,
        size_bytes: u64,
        num_parts: u32,
        label: String,
        enqueued_at: SimTime,
    ) {
        // A broker that forwards work is alive by definition.
        self.registry.note_broker_alive(from, ctx.now());
        self.bump(ctx, |c| c.forwards_received);
        let purpose = Purpose::FileTransfer { bytes: size_bytes };
        let targets = self.resolve_targets(ctx, &TargetSpec::Selected, purpose);
        if !targets.is_empty() {
            for node in targets {
                self.start_transfer(ctx, node, size_bytes, num_parts, &label, enqueued_at);
            }
            self.bump(ctx, |c| c.forwards_served);
            return;
        }
        if hops_left > 1
            && self.forward_petition(
                ctx,
                origin,
                Some(from),
                hops_left - 1,
                size_bytes,
                num_parts,
                &label,
                enqueued_at,
            )
        {
            return;
        }
        self.bump(ctx, |c| c.forwards_exhausted);
    }
}

/// Emits a [`TraceEventKind::SelectionDecided`] event with per-candidate
/// costs. Callers must check `ctx.trace_enabled()` first — cost extraction
/// re-runs the model's scoring pass, which is fine for observability (the
/// pass is read-only w.r.t. the simulation) but wasted work when disabled.
fn trace_selection(
    ctx: &mut Context<OverlayMsg>,
    selector: &mut dyn PeerSelector,
    req: &SelectionRequest<'_>,
    chosen: NodeId,
) {
    let costs = selector
        .candidate_costs(req)
        .map(|cs| req.candidates.iter().map(|c| c.node).zip(cs).collect())
        .unwrap_or_default();
    ctx.trace_event(TraceEventKind::SelectionDecided {
        model: selector.name().to_string(),
        chosen,
        costs,
    });
}
