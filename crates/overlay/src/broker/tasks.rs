//! The task layer: lifecycle of executable tasks (ship input → offer →
//! accept → result) and the client-submitted jobs they realise.

use std::collections::HashMap;

use netsim::engine::Context;
use netsim::node::NodeId;
use netsim::time::SimTime;

use crate::id::{PeerId, TaskId, TransferId};
use crate::message::OverlayMsg;
use crate::records::{JobRecord, TaskRecord};
use crate::selector::{Purpose, SelectionOutcome};
use crate::task::{TaskPhase, TaskSpec, TaskTracking};

use super::Broker;

/// A client-submitted job realised by one broker task.
#[derive(Debug, Clone)]
pub(crate) struct JobInfo {
    pub(crate) submitter_node: NodeId,
    pub(crate) label: String,
    pub(crate) submitted_at: SimTime,
}

/// Tracking state for all tasks the broker has in flight.
#[derive(Default)]
pub(crate) struct TaskBook {
    pub(crate) tasks: HashMap<TaskId, TaskTracking>,
    /// Maps an input-shipment transfer back to the task awaiting it.
    pub(crate) input_transfer_to_task: HashMap<TransferId, TaskId>,
    /// Client-submitted jobs keyed by the task executing them.
    pub(crate) job_for_task: HashMap<TaskId, JobInfo>,
}

impl TaskBook {
    pub(crate) fn new() -> Self {
        TaskBook::default()
    }
}

impl Broker {
    pub(crate) fn offer_task(&mut self, ctx: &mut Context<OverlayMsg>, task_id: TaskId) {
        let now = ctx.now();
        let Some(tracking) = self.tasks.tasks.get_mut(&task_id) else {
            return;
        };
        tracking.phase = TaskPhase::Offered;
        tracking.offered_at = Some(now);
        if tracking.input_transfer.is_some() && tracking.input_done_at.is_none() {
            tracking.input_done_at = Some(now);
        }
        let node = tracking.node;
        let spec = tracking.spec.clone();
        self.sink.with(|log| {
            if let Some(rec) = log.task_mut(task_id) {
                rec.input_done_at = self.tasks.tasks.get(&task_id).and_then(|t| t.input_done_at);
            }
        });
        ctx.send(
            node,
            OverlayMsg::TaskOffer {
                task: spec,
                sent_at: now,
            },
        );
        let tag = self.retries.arm_task_watchdog(task_id);
        ctx.schedule_timer(self.cfg.task_timeout, tag);
    }

    pub(crate) fn fail_task(&mut self, ctx: &mut Context<OverlayMsg>, task_id: TaskId) {
        if let Some(tracking) = self.tasks.tasks.get_mut(&task_id) {
            tracking.phase = TaskPhase::Failed;
        }
        if let Some(job) = self.tasks.job_for_task.remove(&task_id) {
            let total_secs = ctx.now().duration_since(job.submitted_at).as_secs_f64();
            ctx.send(
                job.submitter_node,
                OverlayMsg::JobDone {
                    label: job.label.clone(),
                    success: false,
                    total_secs,
                },
            );
            self.sink.with(|log| {
                if let Some(rec) = log
                    .jobs
                    .iter_mut()
                    .rev()
                    .find(|j| j.label == job.label && j.done_at.is_none())
                {
                    rec.done_at = Some(ctx.now());
                    rec.success = false;
                }
            });
        }
        self.sink.with(|log| {
            if let Some(rec) = log.task_mut(task_id) {
                rec.success = false;
                rec.result_at = None;
            }
        });
        self.bump(ctx, |c| c.tasks_failed);
        self.maybe_stop(ctx);
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn submit_task(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        node: NodeId,
        work_gops: f64,
        input_bytes: u64,
        input_parts: u32,
        label: &str,
        enqueued_at: SimTime,
    ) {
        let now = ctx.now();
        let spec = TaskSpec {
            id: TaskId::generate(&mut self.ids),
            label: label.to_string(),
            work_gops,
            input_bytes,
        };
        let task_id = spec.id;
        let mut tracking = TaskTracking::new(spec, node, now);
        let on_name = self.registry.display_name(ctx, node);
        self.sink.with(|log| {
            log.tasks.push(TaskRecord {
                id: task_id,
                on: node,
                on_name,
                label: label.to_string(),
                input_bytes,
                work_gops,
                submitted_at: now,
                input_done_at: None,
                accepted_at: None,
                result_at: None,
                exec_secs: None,
                success: false,
            })
        });
        if input_bytes > 0 {
            let transfer = self.start_transfer(
                ctx,
                node,
                input_bytes,
                input_parts,
                &format!("{label}.input"),
                enqueued_at,
            );
            tracking.input_transfer = Some(transfer);
            self.tasks.input_transfer_to_task.insert(transfer, task_id);
            self.tasks.tasks.insert(task_id, tracking);
        } else {
            self.tasks.tasks.insert(task_id, tracking);
            self.offer_task(ctx, task_id);
        }
        self.bump(ctx, |c| c.tasks_submitted);
    }

    pub(crate) fn on_task_accept(&mut self, ctx: &mut Context<OverlayMsg>, task: TaskId) {
        let now = ctx.now();
        if let Some(tracking) = self.tasks.tasks.get_mut(&task) {
            tracking.phase = TaskPhase::Running;
            tracking.accepted_at = Some(now);
            let node = tracking.node;
            self.sink.with(|log| {
                if let Some(rec) = log.task_mut(task) {
                    rec.accepted_at = Some(now);
                }
            });
            if let Some(peer) = self.registry.peer_of(node) {
                if let Some(entry) = self.registry.entry_mut(peer) {
                    entry.stats.record_task_offer(true);
                }
            }
        }
    }

    pub(crate) fn on_task_reject(&mut self, ctx: &mut Context<OverlayMsg>, task: TaskId) {
        if let Some(tracking) = self.tasks.tasks.get(&task) {
            let node = tracking.node;
            if let Some(peer) = self.registry.peer_of(node) {
                if let Some(entry) = self.registry.entry_mut(peer) {
                    entry.stats.record_task_offer(false);
                }
            }
        }
        self.fail_task(ctx, task);
    }

    pub(crate) fn on_task_result(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        task: TaskId,
        success: bool,
        exec_secs: f64,
    ) {
        let now = ctx.now();
        let work_gops;
        if let Some(tracking) = self.tasks.tasks.get_mut(&task) {
            tracking.phase = if success {
                TaskPhase::Completed
            } else {
                TaskPhase::Failed
            };
            tracking.result_at = Some(now);
            tracking.exec_secs = Some(exec_secs);
            work_gops = tracking.spec.work_gops;
            let node = tracking.node;
            if let Some(peer) = self.registry.peer_of(node) {
                if let Some(entry) = self.registry.entry_mut(peer) {
                    entry.stats.record_task_execution(success);
                    if success && exec_secs > 0.0 {
                        entry
                            .history
                            .observe_exec_rate(work_gops / exec_secs, self.cfg.ewma_alpha);
                    }
                }
            }
        }
        self.sink.with(|log| {
            if let Some(rec) = log.task_mut(task) {
                rec.result_at = Some(now);
                rec.exec_secs = Some(exec_secs);
                rec.success = success;
            }
        });
        if let Some(tracking) = self.tasks.tasks.get(&task) {
            self.selection.on_outcome(&SelectionOutcome {
                node: tracking.node,
                success,
                elapsed_secs: tracking.total_secs().unwrap_or(0.0),
                bytes: tracking.spec.input_bytes,
            });
        }
        if let Some(job) = self.tasks.job_for_task.remove(&task) {
            let total_secs = now.duration_since(job.submitted_at).as_secs_f64();
            ctx.send(
                job.submitter_node,
                OverlayMsg::JobDone {
                    label: job.label.clone(),
                    success,
                    total_secs,
                },
            );
            self.sink.with(|log| {
                if let Some(rec) = log
                    .jobs
                    .iter_mut()
                    .rev()
                    .find(|j| j.label == job.label && j.done_at.is_none())
                {
                    rec.done_at = Some(now);
                    rec.success = success;
                }
            });
        }
        self.bump(ctx, |c| c.tasks_completed);
        self.maybe_stop(ctx);
    }

    pub(crate) fn on_job_submit(
        &mut self,
        ctx: &mut Context<OverlayMsg>,
        submitter: PeerId,
        work_gops: f64,
        input_bytes: u64,
        input_parts: u32,
        label: String,
    ) {
        let now = ctx.now();
        let Some(submitter_node) = self.registry.node_of(submitter) else {
            return;
        };
        // Execute anywhere except the submitter itself.
        let candidates: Vec<NodeId> = self
            .registry
            .registered_nodes()
            .into_iter()
            .filter(|&n| n != submitter_node)
            .collect();
        let purpose = Purpose::TaskExecution {
            work_gops: work_gops as u64,
            input_bytes,
        };
        let Some(executor) = self.select_among(ctx, &candidates, purpose) else {
            self.bump(ctx, |c| c.jobs_unplaced);
            return;
        };
        self.sink.with(|log| {
            log.jobs.push(JobRecord {
                label: label.clone(),
                submitter: submitter_node,
                executor,
                submitted_at: now,
                done_at: None,
                success: false,
            })
        });
        self.submit_task(
            ctx,
            executor,
            work_gops,
            input_bytes,
            input_parts,
            &label,
            now,
        );
        // Remember which task realises this job: it is the one just
        // inserted with this label and executor.
        if let Some((task_id, _)) = self
            .tasks
            .tasks
            .iter()
            .find(|(_, t)| t.spec.label == label && t.node == executor && t.result_at.is_none())
        {
            self.tasks.job_for_task.insert(
                *task_id,
                JobInfo {
                    submitter_node,
                    label,
                    submitted_at: now,
                },
            );
        }
    }
}
