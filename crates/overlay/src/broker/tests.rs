//! End-to-end broker tests on loss-free star topologies.

use super::*;
use crate::client::{ClientCommand, ClientConfig, SimpleClient};
use netsim::link::{AccessLink, PathSpec};
use netsim::node::NodeSpec;
use netsim::prelude::*;

/// Builds a broker + `n` clients on a simple star topology.
fn star(
    n: usize,
    cfg_broker: impl FnOnce(NodeId) -> BrokerConfig,
) -> (Engine<OverlayMsg>, RecordSink, NodeId, Vec<NodeId>) {
    let mut topo = Topology::new();
    let broker_node = topo.add_node(
        NodeSpec::responsive("broker"),
        AccessLink::symmetric_mbps(80.0, 0.0001),
    );
    let mut clients = Vec::new();
    for i in 0..n {
        let c = topo.add_node(
            NodeSpec::responsive(format!("client{i}")),
            AccessLink::symmetric_mbps(8.0, 0.0003),
        );
        topo.set_path_symmetric(broker_node, c, PathSpec::from_owd_ms(20.0, 0.0));
        clients.push(c);
    }
    let sink = RecordSink::new();
    let mut engine = Engine::new(topo, TransportConfig::default(), 42);
    engine.register(
        broker_node,
        Box::new(Broker::new(cfg_broker(broker_node), sink.clone())),
    );
    for (i, &c) in clients.iter().enumerate() {
        engine.register(
            c,
            Box::new(SimpleClient::new(
                ClientConfig::new(broker_node),
                1000 + i as u64,
            )),
        );
    }
    (engine, sink, broker_node, clients)
}

#[test]
fn clients_join_and_transfer_completes() {
    let (mut engine, sink, _b, clients) = star(2, |_| {
        BrokerConfig::new(7).at(
            SimDuration::from_secs(1),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 4 << 20,
                num_parts: 4,
                label: "t".into(),
            },
        )
    });
    let outcome = engine.run_until(SimTime::from_secs_f64(3600.0));
    assert_eq!(outcome, RunOutcome::Stopped, "broker stops when idle");
    let log = sink.drain();
    assert_eq!(log.transfers.len(), 2);
    for t in &log.transfers {
        assert!(
            t.completed_at.is_some(),
            "transfer to {} incomplete",
            t.to_name
        );
        assert!(!t.cancelled);
        assert_eq!(t.parts.len(), 4);
        assert!(t.parts.iter().all(|p| p.confirmed_at.is_some()));
        assert!(clients.contains(&t.to));
        assert!(t.petition_latency_secs().unwrap() > 0.0);
        assert!(t.total_secs().unwrap() > 0.0);
    }
}

#[test]
fn single_part_transfer_is_whole_file() {
    let (mut engine, sink, _b, _c) = star(1, |_| {
        BrokerConfig::new(8).at(
            SimDuration::from_secs(1),
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 1 << 20,
                num_parts: 1,
                label: "whole".into(),
            },
        )
    });
    engine.run_until(SimTime::from_secs_f64(3600.0));
    let log = sink.drain();
    assert_eq!(log.transfers.len(), 1);
    assert_eq!(log.transfers[0].num_parts, 1);
    assert!(log.transfers[0].completed_at.is_some());
}

#[test]
fn task_without_input_runs_to_completion() {
    let (mut engine, sink, _b, clients) = star(1, |_| {
        BrokerConfig::new(9).at(
            SimDuration::from_secs(1),
            BrokerCommand::SubmitTask {
                target: TargetSpec::Node(NodeId(1)),
                work_gops: 10.0,
                input_bytes: 0,
                input_parts: 1,
                label: "compute".into(),
            },
        )
    });
    engine.run_until(SimTime::from_secs_f64(3600.0));
    let log = sink.drain();
    assert_eq!(log.tasks.len(), 1);
    let t = &log.tasks[0];
    assert_eq!(t.on, clients[0]);
    assert!(t.success);
    assert!(t.exec_secs.unwrap() > 0.0);
    assert!(t.accepted_at.is_some());
    assert!(t.total_secs().unwrap() >= t.exec_secs.unwrap());
    assert_eq!(t.input_done_at, None);
}

#[test]
fn task_with_input_ships_file_first() {
    let (mut engine, sink, _b, _c) = star(1, |_| {
        BrokerConfig::new(10).at(
            SimDuration::from_secs(1),
            BrokerCommand::SubmitTask {
                target: TargetSpec::AllClients,
                work_gops: 5.0,
                input_bytes: 2 << 20,
                input_parts: 4,
                label: "process".into(),
            },
        )
    });
    engine.run_until(SimTime::from_secs_f64(3600.0));
    let log = sink.drain();
    assert_eq!(log.tasks.len(), 1);
    assert_eq!(log.transfers.len(), 1, "input shipped as a transfer");
    let task = &log.tasks[0];
    assert!(task.success);
    assert!(task.input_done_at.is_some());
    // Makespan covers transfer + execution.
    let transfer_secs = log.transfers[0].total_secs().unwrap();
    assert!(task.total_secs().unwrap() > transfer_secs);
}

#[test]
fn refusing_client_causes_cancel() {
    let mut topo = Topology::new();
    let broker_node = topo.add_node(
        NodeSpec::responsive("broker"),
        AccessLink::symmetric_mbps(80.0, 0.0001),
    );
    let c = topo.add_node(
        NodeSpec::responsive("refuser"),
        AccessLink::symmetric_mbps(8.0, 0.0003),
    );
    topo.set_path_symmetric(broker_node, c, PathSpec::from_owd_ms(20.0, 0.0));
    let sink = RecordSink::new();
    let mut engine = Engine::new(topo, TransportConfig::default(), 5);
    engine.register(
        broker_node,
        Box::new(Broker::new(
            BrokerConfig::new(11).at(
                SimDuration::from_secs(1),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::AllClients,
                    size_bytes: 1 << 20,
                    num_parts: 2,
                    label: "refused".into(),
                },
            ),
            sink.clone(),
        )),
    );
    let mut cfg = ClientConfig::new(broker_node);
    cfg.refuse_transfers = true;
    engine.register(c, Box::new(SimpleClient::new(cfg, 99)));
    engine.run_until(SimTime::from_secs_f64(3600.0));
    let log = sink.drain();
    assert_eq!(log.transfers.len(), 1);
    assert!(log.transfers[0].cancelled);
    assert!(log.transfers[0].completed_at.is_none());
}

#[test]
fn selected_target_uses_selector_and_records_decision() {
    let (mut engine, sink, _b, _c) = star(3, |_| {
        BrokerConfig::new(12)
            .with_selector(Box::new(crate::selector::RoundRobinSelector::new()))
            .at(
                SimDuration::from_secs(2),
                BrokerCommand::DistributeFile {
                    target: TargetSpec::Selected,
                    size_bytes: 1 << 20,
                    num_parts: 2,
                    label: "sel".into(),
                },
            )
    });
    engine.run_until(SimTime::from_secs_f64(3600.0));
    let log = sink.drain();
    assert_eq!(log.selections.len(), 1);
    assert_eq!(log.selections[0].model, "round-robin");
    assert_eq!(log.selections[0].candidates, 3);
    assert_eq!(log.transfers.len(), 1);
    assert_eq!(log.transfers[0].to, log.selections[0].chosen);
}

#[test]
fn commands_wait_for_peers_to_join() {
    // Command scheduled at t=0, before any Join can arrive; the broker
    // must retry until the client is registered.
    let (mut engine, sink, _b, _c) = star(1, |_| {
        BrokerConfig::new(13).at(
            SimDuration::ZERO,
            BrokerCommand::DistributeFile {
                target: TargetSpec::AllClients,
                size_bytes: 1 << 20,
                num_parts: 2,
                label: "early".into(),
            },
        )
    });
    engine.run_until(SimTime::from_secs_f64(3600.0));
    let log = sink.drain();
    assert_eq!(log.transfers.len(), 1);
    assert!(log.transfers[0].completed_at.is_some());
}

#[test]
fn instant_message_reaches_clients() {
    let (mut engine, _sink, _b, clients) = star(2, |_| {
        let mut cfg = BrokerConfig::new(14).at(
            SimDuration::from_secs(1),
            BrokerCommand::SendInstant {
                target: TargetSpec::AllClients,
                text: "hello peers".into(),
            },
        );
        cfg.stop_when_idle = true;
        cfg
    });
    engine.run_until(SimTime::from_secs_f64(120.0));
    for &c in &clients {
        let got = engine.with_actor(c, |_a| ()).is_some();
        assert!(got);
    }
    assert!(engine.metrics().counter("net.messages_sent") > 0);
}

/// Star topology where client configs are customised per index.
fn star_with(
    n: usize,
    broker_cfg: BrokerConfig,
    mut client_cfg: impl FnMut(usize, NodeId) -> ClientConfig,
    sink: &RecordSink,
) -> (Engine<OverlayMsg>, NodeId, Vec<NodeId>) {
    let mut topo = Topology::new();
    let broker_node = topo.add_node(
        NodeSpec::responsive("broker"),
        AccessLink::symmetric_mbps(80.0, 0.0001),
    );
    let mut clients = Vec::new();
    for i in 0..n {
        let c = topo.add_node(
            NodeSpec::responsive(format!("client{i}")),
            AccessLink::symmetric_mbps(8.0, 0.0003),
        );
        topo.set_path_symmetric(broker_node, c, PathSpec::from_owd_ms(20.0, 0.0));
        clients.push(c);
    }
    for i in 0..n {
        for j in (i + 1)..n {
            topo.set_path_symmetric(clients[i], clients[j], PathSpec::from_owd_ms(30.0, 0.0));
        }
    }
    let mut engine = Engine::new(topo, TransportConfig::default(), 42);
    engine.register(broker_node, Box::new(Broker::new(broker_cfg, sink.clone())));
    for (i, &c) in clients.iter().enumerate() {
        engine.register(
            c,
            Box::new(
                SimpleClient::new(client_cfg(i, broker_node), 1000 + i as u64)
                    .with_sink(sink.clone()),
            ),
        );
    }
    (engine, broker_node, clients)
}

#[test]
fn file_request_is_served_peer_to_peer() {
    let sink = RecordSink::new();
    // Keep the run alive past the sender's TransferReport: stopping at
    // the broker's first idle moment would strand the in-flight
    // TransferComplete that carries the receiver's byte tally.
    let mut bcfg = BrokerConfig::new(21);
    bcfg.stop_when_idle = false;
    let (mut engine, _b, clients) = star_with(
        2,
        bcfg,
        |i, broker| {
            let cfg = ClientConfig::new(broker);
            if i == 0 {
                cfg.sharing("dataset.bin", 2 << 20)
            } else {
                cfg.at(
                    SimDuration::from_secs(5),
                    crate::client::ClientCommand::RequestFile {
                        name: "dataset.bin".into(),
                    },
                )
            }
        },
        &sink,
    );
    engine.run_until(SimTime::from_secs_f64(3600.0));
    let log = sink.drain();
    let xfer = log
        .transfers
        .iter()
        .find(|t| t.label == "dataset.bin")
        .expect("peer-to-peer transfer recorded");
    assert_eq!(xfer.to, clients[1], "file flows to the requester");
    assert!(xfer.completed_at.is_some());
    assert!(!xfer.cancelled);
    assert_eq!(
        xfer.receiver_bytes,
        Some(2 << 20),
        "receiver tallies every byte exactly once"
    );
    assert_eq!(engine.metrics().counter("overlay.file_requests_served"), 1);
    assert_eq!(engine.metrics().counter("overlay.content_published"), 1);
}

#[test]
fn file_request_for_unknown_content_is_counted() {
    let sink = RecordSink::new();
    let (mut engine, _b, _c) = star_with(
        1,
        BrokerConfig::new(22),
        |_, broker| {
            ClientConfig::new(broker).at(
                SimDuration::from_secs(5),
                crate::client::ClientCommand::RequestFile {
                    name: "missing.bin".into(),
                },
            )
        },
        &sink,
    );
    engine.run_until(SimTime::from_secs_f64(600.0));
    assert_eq!(
        engine.metrics().counter("overlay.file_requests_unserved"),
        1
    );
}

#[test]
fn file_request_selects_among_multiple_owners() {
    let sink = RecordSink::new();
    let mut broker_cfg =
        BrokerConfig::new(23).with_selector(Box::new(crate::selector::RoundRobinSelector::new()));
    // The broker cannot see future client-scheduled commands, so don't
    // let it stop at the first idle moment.
    broker_cfg.stop_when_idle = false;
    let (mut engine, _b, clients) = star_with(
        3,
        broker_cfg,
        |i, broker| {
            let cfg = ClientConfig::new(broker);
            if i < 2 {
                cfg.sharing("replicated.iso", 1 << 20)
            } else {
                cfg.at(
                    SimDuration::from_secs(5),
                    crate::client::ClientCommand::RequestFile {
                        name: "replicated.iso".into(),
                    },
                )
                .at(
                    SimDuration::from_secs(60),
                    crate::client::ClientCommand::RequestFile {
                        name: "replicated.iso".into(),
                    },
                )
            }
        },
        &sink,
    );
    engine.run_until(SimTime::from_secs_f64(3600.0));
    let log = sink.drain();
    assert_eq!(engine.metrics().counter("overlay.file_requests_served"), 2);
    assert_eq!(
        log.selections.len(),
        2,
        "selector consulted when several peers hold the content"
    );
    let completed = log
        .transfers
        .iter()
        .filter(|t| t.label == "replicated.iso" && t.completed_at.is_some())
        .count();
    assert_eq!(completed, 2);
    for t in &log.transfers {
        assert_eq!(t.to, clients[2]);
    }
}

#[test]
fn client_submitted_job_round_trips() {
    let sink = RecordSink::new();
    let (mut engine, _b, clients) = star_with(
        3,
        BrokerConfig::new(24),
        |i, broker| {
            let cfg = ClientConfig::new(broker);
            if i == 0 {
                cfg.at(
                    SimDuration::from_secs(5),
                    crate::client::ClientCommand::SubmitJob {
                        work_gops: 10.0,
                        input_bytes: 1 << 20,
                        input_parts: 2,
                        label: "render".into(),
                    },
                )
            } else {
                cfg
            }
        },
        &sink,
    );
    engine.run_until(SimTime::from_secs_f64(3600.0));
    let log = sink.drain();
    assert_eq!(log.jobs.len(), 1);
    let job = &log.jobs[0];
    assert_eq!(job.label, "render");
    assert_eq!(job.submitter, clients[0]);
    assert_ne!(job.executor, clients[0], "job runs on a different peer");
    assert!(job.success, "job completed");
    assert!(job.total_secs().unwrap() > 0.0);
    // Its input travelled as a transfer and the task executed.
    assert_eq!(log.tasks.len(), 1);
    assert!(log.tasks[0].success);
}

#[test]
fn federated_brokers_select_across_domains() {
    // Broker A governs clients 0–1; broker B governs clients 2–3.
    // After gossip, A's selection sees all four peers.
    let mut topo = Topology::new();
    let broker_a = topo.add_node(
        NodeSpec::responsive("broker-a"),
        AccessLink::symmetric_mbps(80.0, 0.0001),
    );
    let broker_b = topo.add_node(
        NodeSpec::responsive("broker-b"),
        AccessLink::symmetric_mbps(80.0, 0.0001),
    );
    topo.set_path_symmetric(broker_a, broker_b, PathSpec::from_owd_ms(10.0, 0.0));
    let mut clients = Vec::new();
    for i in 0..4 {
        let c = topo.add_node(
            NodeSpec::responsive(format!("client{i}")),
            AccessLink::symmetric_mbps(8.0, 0.0003),
        );
        topo.set_path_symmetric(broker_a, c, PathSpec::from_owd_ms(20.0, 0.0));
        topo.set_path_symmetric(broker_b, c, PathSpec::from_owd_ms(20.0, 0.0));
        clients.push(c);
    }
    let sink = RecordSink::new();
    let mut cfg_a = BrokerConfig::new(31)
        .with_selector(Box::new(crate::selector::RoundRobinSelector::new()))
        .at(
            // Well after the first gossip round (60 s).
            SimDuration::from_secs(150),
            BrokerCommand::DistributeFile {
                target: TargetSpec::Selected,
                size_bytes: 1 << 20,
                num_parts: 2,
                label: "federated".into(),
            },
        );
    cfg_a.peer_brokers = vec![broker_b];
    let mut cfg_b = BrokerConfig::new(32);
    cfg_b.peer_brokers = vec![broker_a];
    cfg_b.stop_when_idle = false;
    let mut engine = Engine::new(topo, TransportConfig::default(), 77);
    engine.register(broker_a, Box::new(Broker::new(cfg_a, sink.clone())));
    engine.register(broker_b, Box::new(Broker::new(cfg_b, RecordSink::new())));
    for (i, &c) in clients.iter().enumerate() {
        let broker = if i < 2 { broker_a } else { broker_b };
        engine.register(
            c,
            Box::new(SimpleClient::new(
                ClientConfig::new(broker),
                3000 + i as u64,
            )),
        );
    }
    engine.run_until(SimTime::from_secs_f64(400.0));
    let log = sink.drain();
    assert_eq!(log.selections.len(), 1);
    assert_eq!(
        log.selections[0].candidates, 4,
        "broker A must see B's peers after gossip"
    );
    assert_eq!(log.transfers.len(), 1);
    assert!(log.transfers[0].completed_at.is_some());
    assert!(engine.metrics().counter("overlay.gossip_received") >= 2);
}

#[test]
fn task_watchdog_fails_unanswered_offers() {
    // The task goes to a host with no running application: the offer is
    // never answered, so the task watchdog must fail it (and the broker
    // must then be able to stop as idle).
    let mut topo = Topology::new();
    let broker_node = topo.add_node(
        NodeSpec::responsive("broker"),
        AccessLink::symmetric_mbps(80.0, 0.0001),
    );
    let alive = topo.add_node(
        NodeSpec::responsive("alive"),
        AccessLink::symmetric_mbps(8.0, 0.0003),
    );
    let dead = topo.add_node(
        NodeSpec::responsive("dead"),
        AccessLink::symmetric_mbps(8.0, 0.0003),
    );
    topo.set_path_symmetric(broker_node, alive, PathSpec::from_owd_ms(20.0, 0.0));
    topo.set_path_symmetric(broker_node, dead, PathSpec::from_owd_ms(20.0, 0.0));
    let sink = RecordSink::new();
    let mut bcfg = BrokerConfig::new(41).at(
        SimDuration::from_secs(5),
        BrokerCommand::SubmitTask {
            target: TargetSpec::Node(dead),
            work_gops: 5.0,
            input_bytes: 0,
            input_parts: 1,
            label: "doomed".into(),
        },
    );
    bcfg.task_timeout = SimDuration::from_secs(60);
    let mut engine = Engine::new(topo, TransportConfig::default(), 13);
    engine.register(broker_node, Box::new(Broker::new(bcfg, sink.clone())));
    engine.register(
        alive,
        Box::new(SimpleClient::new(ClientConfig::new(broker_node), 50)),
    );
    // `dead` has no actor registered.
    let outcome = engine.run_until(SimTime::from_secs_f64(600.0));
    assert_eq!(outcome, RunOutcome::Stopped, "broker stops after timeout");
    assert!(
        engine.now().as_secs_f64() < 120.0,
        "watchdog fired at ~65 s"
    );
    assert_eq!(engine.metrics().counter("overlay.tasks_timed_out"), 1);
    let log = sink.drain();
    assert_eq!(log.tasks.len(), 1);
    assert!(!log.tasks[0].success);
}

#[test]
fn departed_peer_is_never_selected() {
    // Client 2 leaves at t=30 s; every Selected distribution after that
    // must see only the two remaining candidates and never choose the
    // departed host.
    let sink = RecordSink::new();
    let mut bcfg =
        BrokerConfig::new(61).with_selector(Box::new(crate::selector::RoundRobinSelector::new()));
    for k in 0..6u64 {
        bcfg = bcfg.at(
            SimDuration::from_secs(60 + 10 * k),
            BrokerCommand::DistributeFile {
                target: TargetSpec::Selected,
                size_bytes: 1 << 18,
                num_parts: 1,
                label: format!("after-leave-{k}"),
            },
        );
    }
    let (mut engine, _b, clients) = star_with(
        3,
        bcfg,
        |i, broker| {
            let cfg = ClientConfig::new(broker);
            if i == 2 {
                cfg.at(SimDuration::from_secs(30), ClientCommand::Leave)
            } else {
                cfg
            }
        },
        &sink,
    );
    let outcome = engine.run_until(SimTime::from_secs_f64(3600.0));
    assert_eq!(outcome, RunOutcome::Stopped);
    let log = sink.drain();
    let departed = clients[2];
    assert_eq!(log.selections.len(), 6);
    for sel in &log.selections {
        assert_eq!(sel.candidates, 2, "departed peer out of the roster");
        assert_ne!(sel.chosen, departed, "selection returned a departed peer");
    }
    for t in &log.transfers {
        assert_ne!(t.to, departed, "transfer addressed to a departed peer");
    }
}

#[test]
fn leave_cancels_deferred_commands_to_the_departed_node() {
    // A command explicitly targeted at client 0's host is scheduled after
    // that client leaves: the broker must withdraw it (no transfer, no
    // watchdog) and still reach idle-stop.
    let sink = RecordSink::new();
    // star_with lays nodes out broker-first: client 0 lives on NodeId(1).
    let target = NodeId(1);
    let (mut engine, _b, clients) = star_with(
        2,
        BrokerConfig::new(62).at(
            SimDuration::from_secs(90),
            BrokerCommand::DistributeFile {
                target: TargetSpec::Node(target),
                size_bytes: 1 << 20,
                num_parts: 2,
                label: "to-departed".into(),
            },
        ),
        |i, broker| {
            let cfg = ClientConfig::new(broker);
            if i == 0 {
                cfg.at(SimDuration::from_secs(30), ClientCommand::Leave)
            } else {
                cfg
            }
        },
        &sink,
    );
    assert_eq!(clients[0], target);
    let outcome = engine.run_until(SimTime::from_secs_f64(3600.0));
    assert_eq!(outcome, RunOutcome::Stopped, "idle despite withdrawn work");
    let log = sink.drain();
    assert!(
        log.transfers.is_empty(),
        "cancelled command must not start a transfer"
    );
}
