//! Scripted peer lifecycle: the churn actor.
//!
//! A [`LifecyclePeer`] walks the canonical membership state machine
//! (`Unknown → Identified → Connected → Departed`, with `Departed →
//! Identified` on rejoin) under a **pre-built script** of sessions: the
//! peer joins after its arrival delay, stays connected for a session
//! length, leaves, sits out an off-time, and rejoins — possibly
//! advertising a different capacity each session, which is exactly the
//! path that exercises the registry's refresh-on-rejoin semantics.
//!
//! Scripts are sampled *before* the run from a dedicated RNG stream
//! ([`LifecycleScript::sample`]), never from per-event randomness, so a
//! sharded run's join/leave schedule is a pure function of the master
//! seed — byte-identical at any worker count. All session timers are
//! armed absolutely at `on_start`.
//!
//! While `Connected` the peer behaves like a minimal receiver: it accepts
//! petitions, confirms parts, executes offered tasks. In any other state
//! it *refuses* new work (petition NAK / task reject) rather than
//! black-holing it — the overlay analogue of a TCP RST from a host whose
//! application has exited — so churn runs wind down through refusal paths
//! instead of hour-long watchdog timeouts. Parts already in flight when
//! the peer departs are silently dropped and left to the sender's retry
//! policy, like a real mid-transfer crash.

use std::collections::HashMap;

use netsim::engine::{Actor, Context, TimerId};
use netsim::metrics::{MetricId, Metrics};
use netsim::node::NodeId;
use netsim::rng::{DelayDistribution, SimRng};
use netsim::time::{SimDuration, SimTime};
use netsim::trace::TraceEventKind;

use crate::advertisement::{PeerAdvertisement, DEFAULT_LIFETIME};
use crate::federation::FailoverPolicy;
use crate::filetransfer::{InboundTransfer, PartReceipt};
use crate::footprint::{map_estimate, slots_estimate, FootprintBreakdown, MemoryFootprint};
use crate::id::{IdGenerator, PeerId, TransferId};
use crate::message::OverlayMsg;

/// Timer tags `2*i` / `2*i + 1` mark session `i`'s join / leave.
const SESSION_TAG_SPAN: u64 = 1 << 32;
/// Task-execution timers live above every session tag.
const TASK_TAG_BASE: u64 = SESSION_TAG_SPAN;
/// Failover-probe timers live above every task tag (tasks allocate
/// upward from [`TASK_TAG_BASE`] one at a time; a run would need 2^32
/// tasks on one peer to collide).
const PROBE_TAG_BASE: u64 = 1 << 33;

/// Where a peer stands in its membership lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleState {
    /// Not yet arrived: the overlay has never heard of this peer.
    Unknown,
    /// Join sent, acknowledgement outstanding.
    Identified,
    /// Registered member, serving work.
    Connected,
    /// Left the overlay (possibly until the next scripted session).
    Departed,
}

/// One scripted connected period.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionPlan {
    /// How long the peer stays connected.
    pub length: SimDuration,
    /// Idle gap after leaving, before the next session (ignored for the
    /// final session).
    pub off_time: SimDuration,
    /// Capacity advertised for this session (rejoins may differ — churn
    /// is how stale-capacity bugs surface).
    pub cpu_gops: f64,
}

/// A peer's whole scripted life: arrival, then alternating sessions and
/// off-times.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleScript {
    /// Delay from run start to the first Join.
    pub arrival: SimDuration,
    /// The connected sessions, in order. Never empty.
    pub sessions: Vec<SessionPlan>,
}

/// Distributions a [`LifecycleScript`] is sampled from.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnProfile {
    /// Arrival delay of the first join.
    pub arrival: DelayDistribution,
    /// Connected-session length.
    pub session: DelayDistribution,
    /// Off-time between sessions.
    pub off_time: DelayDistribution,
    /// Pareto scale (minimum) for per-session advertised capacity, gops.
    pub cpu_xm: f64,
    /// Pareto shape for per-session capacity (heavier tail when smaller).
    pub cpu_alpha: f64,
}

impl Default for ChurnProfile {
    fn default() -> Self {
        // Medians in the tens-of-minutes band observed in P2P session
        // studies: most sessions are short, a heavy tail stays for hours.
        ChurnProfile {
            arrival: DelayDistribution::Uniform { lo: 0.0, hi: 600.0 },
            session: DelayDistribution::Lognormal {
                median: 1800.0,
                sigma: 1.0,
            },
            off_time: DelayDistribution::Lognormal {
                median: 600.0,
                sigma: 0.8,
            },
            cpu_xm: 0.5,
            cpu_alpha: 1.8,
        }
    }
}

impl LifecycleScript {
    /// Samples a script from `profile`, packing sessions until `horizon`
    /// (at least one). All randomness comes from `rng`, so the schedule
    /// is fixed before the simulation starts.
    pub fn sample(rng: &mut SimRng, profile: &ChurnProfile, horizon: SimDuration) -> Self {
        let arrival = SimDuration::from_secs_f64(
            profile
                .arrival
                .sample_secs(rng)
                .min(horizon.as_secs_f64() * 0.5),
        );
        let mut sessions = Vec::new();
        let mut t = arrival;
        loop {
            let length = SimDuration::from_secs_f64(profile.session.sample_secs(rng));
            let off_time = SimDuration::from_secs_f64(profile.off_time.sample_secs(rng));
            let cpu_gops = rng.pareto(profile.cpu_xm, profile.cpu_alpha);
            sessions.push(SessionPlan {
                length,
                off_time,
                cpu_gops,
            });
            t = t + length + off_time;
            if t >= horizon {
                break;
            }
        }
        LifecycleScript { arrival, sessions }
    }

    /// Absolute `(join, leave)` instants of session `i`, from run start.
    pub fn session_bounds(&self, i: usize) -> (SimDuration, SimDuration) {
        let mut start = self.arrival;
        for s in &self.sessions[..i] {
            start = start + s.length + s.off_time;
        }
        (start, start + self.sessions[i].length)
    }
}

/// Pre-resolved churn counters (swap-dynamics accounting).
struct LifecycleCounters {
    joins: MetricId,
    rejoins: MetricId,
    leaves: MetricId,
    refused_petitions: MetricId,
    refused_tasks: MetricId,
    rehomes: MetricId,
}

impl LifecycleCounters {
    fn resolve(metrics: &mut Metrics) -> Self {
        LifecycleCounters {
            joins: metrics.counter_id("churn.joins"),
            rejoins: metrics.counter_id("churn.rejoins"),
            leaves: metrics.counter_id("churn.leaves"),
            refused_petitions: metrics.counter_id("churn.refused_petitions"),
            refused_tasks: metrics.counter_id("churn.refused_tasks"),
            rehomes: metrics.counter_id("churn.rehomes"),
        }
    }
}

/// Behaviour knobs for a [`LifecyclePeer`].
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// Broker hosts in home-preference order: the peer lives through the
    /// first, and — when `failover` is set — walks down the list each
    /// time its current home stops answering probes (wrapping around).
    /// Never empty.
    pub brokers: Vec<NodeId>,
    /// The pre-built join/leave schedule.
    pub script: LifecycleScript,
    /// Whether to accept executable tasks while connected.
    pub accepts_tasks: bool,
    /// When set, the peer pings its home every `probe_interval` and
    /// re-homes to the next broker on the list after `probe_timeout`
    /// of silence. `None` = trust the home forever (single-broker runs).
    pub failover: Option<FailoverPolicy>,
}

struct RunningTask {
    id: crate::id::TaskId,
    exec_secs: f64,
}

/// The churn actor: a peer that follows its [`LifecycleScript`].
pub struct LifecyclePeer {
    cfg: LifecycleConfig,
    peer_id: PeerId,
    state: LifecycleState,
    /// Index of the session the next join/leave timer belongs to.
    session: usize,
    /// Position on `cfg.brokers` (mod its length) of the current home.
    home_idx: usize,
    /// Last instant the current home answered anything (ack or pong).
    last_ok: SimTime,
    /// Monotone epoch: bumped at every join and leave so probe timers
    /// armed for an earlier connected period die as stale tags.
    probe_epoch: u64,
    inbound: HashMap<TransferId, InboundTransfer>,
    running: HashMap<u64, RunningTask>,
    next_task_tag: u64,
    counters: Option<LifecycleCounters>,
}

impl LifecyclePeer {
    /// Creates a lifecycle peer; `id_seed` fixes its [`PeerId`] (stable
    /// across every session of its life).
    pub fn new(cfg: LifecycleConfig, id_seed: u64) -> Self {
        assert!(!cfg.script.sessions.is_empty(), "a life needs a session");
        assert!(!cfg.brokers.is_empty(), "a peer needs a home broker");
        let mut ids = IdGenerator::new(id_seed);
        LifecyclePeer {
            peer_id: PeerId::generate(&mut ids),
            cfg,
            state: LifecycleState::Unknown,
            session: 0,
            home_idx: 0,
            last_ok: SimTime::ZERO,
            probe_epoch: 0,
            inbound: HashMap::new(),
            running: HashMap::new(),
            next_task_tag: TASK_TAG_BASE,
            counters: None,
        }
    }

    /// This peer's stable identity.
    pub fn peer_id(&self) -> PeerId {
        self.peer_id
    }

    /// Current lifecycle state.
    pub fn state(&self) -> LifecycleState {
        self.state
    }

    /// The broker this peer currently calls home.
    pub fn broker(&self) -> NodeId {
        self.cfg.brokers[self.home_idx % self.cfg.brokers.len()]
    }

    fn bump(&mut self, ctx: &mut Context<OverlayMsg>, which: fn(&LifecycleCounters) -> MetricId) {
        let ids = self
            .counters
            .get_or_insert_with(|| LifecycleCounters::resolve(ctx.metrics()));
        let id = which(ids);
        ctx.metrics().incr_id(id, 1);
    }

    /// Sends this session's advertisement to the current home and awaits
    /// the ack. Shared by scripted joins and failover re-homes — only the
    /// former count as joins/rejoins.
    fn send_advert(&mut self, ctx: &mut Context<OverlayMsg>, session: usize) {
        let adv = PeerAdvertisement {
            peer: self.peer_id,
            node: ctx.self_id(),
            name: ctx.node_name(ctx.self_id()).to_string(),
            cpu_gops: self.cfg.script.sessions[session].cpu_gops,
            accepts_tasks: self.cfg.accepts_tasks,
            published: ctx.now(),
            lifetime: DEFAULT_LIFETIME,
        };
        ctx.send(self.broker(), OverlayMsg::Join(adv));
        self.state = LifecycleState::Identified;
    }

    fn send_join(&mut self, ctx: &mut Context<OverlayMsg>, session: usize) {
        self.send_advert(ctx, session);
        if session == 0 {
            self.bump(ctx, |c| c.joins);
        } else {
            self.bump(ctx, |c| c.rejoins);
        }
    }

    /// A fired failover probe: give up on a silent home, then keep
    /// probing whichever broker is current.
    fn on_probe(&mut self, ctx: &mut Context<OverlayMsg>, tag: u64) {
        if tag != PROBE_TAG_BASE + self.probe_epoch {
            return; // probe armed for an earlier connected period
        }
        if matches!(
            self.state,
            LifecycleState::Unknown | LifecycleState::Departed
        ) {
            return;
        }
        let Some(policy) = self.cfg.failover else {
            return;
        };
        let now = ctx.now();
        if now - self.last_ok > policy.probe_timeout {
            let from = self.broker();
            self.home_idx += 1;
            let to = self.broker();
            ctx.trace_event(TraceEventKind::PeerRehomed { from, to });
            self.bump(ctx, |c| c.rehomes);
            // Grace: the new home gets a full timeout before judgment.
            self.last_ok = now;
            // In-flight receive state belonged to transfers the dead
            // broker drove; its retry engine is gone, so drop them and
            // let the new home re-petition.
            self.inbound.clear();
            self.send_advert(ctx, self.session);
        }
        ctx.send(
            self.broker(),
            OverlayMsg::Ping {
                nonce: self.probe_epoch,
                sent_at: now,
            },
        );
        ctx.schedule_timer(policy.probe_interval, tag);
    }
}

impl MemoryFootprint for LifecyclePeer {
    /// Length-based heap estimate: the pre-sampled session plan under
    /// `scripts`, in-flight receive state under `content`, running tasks
    /// under `stats`.
    fn memory_footprint(&self) -> FootprintBreakdown {
        FootprintBreakdown {
            scripts: slots_estimate::<SessionPlan>(self.cfg.script.sessions.len()),
            content: map_estimate::<TransferId, InboundTransfer>(self.inbound.len()),
            stats: map_estimate::<u64, RunningTask>(self.running.len()),
            ..FootprintBreakdown::default()
        }
    }
}

impl Actor<OverlayMsg> for LifecyclePeer {
    fn on_start(&mut self, ctx: &mut Context<OverlayMsg>) {
        // Scripts are immutable for the whole run, so their cost is
        // counted once, up front; summed across peers by the metrics
        // merge, this is the fleet's script-storage bill.
        let script_bytes = self.memory_footprint().scripts;
        ctx.metrics().incr("churn.script_bytes", script_bytes);
        // Arm every session's join and leave absolutely, up front: the
        // whole life is decided before the first event fires.
        for i in 0..self.cfg.script.sessions.len() {
            let (join_at, leave_at) = self.cfg.script.session_bounds(i);
            ctx.schedule_timer(join_at, 2 * i as u64);
            ctx.schedule_timer(leave_at, 2 * i as u64 + 1);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<OverlayMsg>, from: NodeId, msg: OverlayMsg) {
        let now = ctx.now();
        let connected = self.state == LifecycleState::Connected;
        match msg {
            OverlayMsg::JoinAck { .. } if self.state == LifecycleState::Identified => {
                self.state = LifecycleState::Connected;
                self.last_ok = now;
            }
            OverlayMsg::JoinAck { .. } => {}
            // Any sign of life from the current home resets the failover
            // clock (stale pongs from an abandoned broker are filtered by
            // sender).
            OverlayMsg::Pong { .. } if from == self.broker() => {
                self.last_ok = now;
            }
            OverlayMsg::Pong { .. } => {}
            OverlayMsg::FilePetition {
                transfer,
                num_parts,
                sent_at,
                ..
            } => {
                // Same duplicate discipline as SimpleClient: a retransmitted
                // petition for a known transfer must not reset its state.
                let already_known = self.inbound.contains_key(&transfer);
                let accepted = connected || already_known;
                if accepted && !already_known {
                    self.inbound
                        .insert(transfer, InboundTransfer::new(transfer, num_parts, now));
                }
                if !accepted {
                    self.bump(ctx, |c| c.refused_petitions);
                }
                ctx.send(
                    from,
                    OverlayMsg::PetitionAck {
                        transfer,
                        accepted,
                        petition_sent_at: sent_at,
                        handled_at: now,
                    },
                );
            }
            OverlayMsg::FilePart {
                transfer,
                index,
                size,
            } => {
                // Parts for unknown transfers (including everything after a
                // mid-transfer departure) are dropped: the sender's retry
                // policy owns the failure.
                if let Some(inb) = self.inbound.get_mut(&transfer) {
                    if inb.on_part(index, size) != PartReceipt::Gap {
                        ctx.send(from, OverlayMsg::PartConfirm { transfer, index });
                    }
                }
            }
            OverlayMsg::TransferComplete { transfer } | OverlayMsg::TransferCancel { transfer } => {
                self.inbound.remove(&transfer);
            }
            OverlayMsg::TaskOffer { task, .. } => {
                if connected && self.cfg.accepts_tasks {
                    ctx.send(from, OverlayMsg::TaskAccept { task: task.id });
                    let exec = ctx.execution_time(task.work_gops);
                    let tag = self.next_task_tag;
                    self.next_task_tag += 1;
                    self.running.insert(
                        tag,
                        RunningTask {
                            id: task.id,
                            exec_secs: exec.as_secs_f64(),
                        },
                    );
                    ctx.schedule_timer(exec, tag);
                } else {
                    self.bump(ctx, |c| c.refused_tasks);
                    ctx.send(from, OverlayMsg::TaskReject { task: task.id });
                }
            }
            OverlayMsg::Ping { nonce, sent_at } => {
                ctx.send(from, OverlayMsg::Pong { nonce, sent_at });
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<OverlayMsg>, _timer: TimerId, tag: u64) {
        if tag >= PROBE_TAG_BASE {
            self.on_probe(ctx, tag);
            return;
        }
        if tag >= TASK_TAG_BASE {
            if let Some(done) = self.running.remove(&tag) {
                ctx.send(
                    self.broker(),
                    OverlayMsg::TaskResult {
                        task: done.id,
                        success: true,
                        exec_secs: done.exec_secs,
                    },
                );
            }
            return;
        }
        let session = (tag / 2) as usize;
        if tag.is_multiple_of(2) {
            // Join of session `session`.
            self.session = session;
            self.send_join(ctx, session);
            self.probe_epoch += 1;
            self.last_ok = ctx.now();
            if let Some(policy) = self.cfg.failover {
                ctx.schedule_timer(policy.probe_interval, PROBE_TAG_BASE + self.probe_epoch);
            }
        } else {
            // Leave of session `session`: drop receive state mid-flight.
            if self.state == LifecycleState::Connected || self.state == LifecycleState::Identified {
                ctx.send(self.broker(), OverlayMsg::Leave { peer: self.peer_id });
                self.bump(ctx, |c| c.leaves);
            }
            self.state = LifecycleState::Departed;
            self.inbound.clear();
            // Outstanding probe timers die as stale tags.
            self.probe_epoch += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_scripts_are_deterministic_and_cover_horizon() {
        let profile = ChurnProfile::default();
        let horizon = SimDuration::from_secs(7200);
        let a = LifecycleScript::sample(&mut SimRng::new(9), &profile, horizon);
        let b = LifecycleScript::sample(&mut SimRng::new(9), &profile, horizon);
        assert_eq!(a, b, "same seed, same life");
        assert!(!a.sessions.is_empty());
        let (last_join, last_leave) = a.session_bounds(a.sessions.len() - 1);
        assert!(last_leave > last_join);
        // The final session's span reaches past (or the loop would have
        // packed another one before) the horizon minus one off-time.
        let end = last_leave + a.sessions.last().unwrap().off_time;
        assert!(end >= horizon || a.sessions.len() == 1);
    }

    #[test]
    fn session_bounds_accumulate_lengths_and_off_times() {
        let script = LifecycleScript {
            arrival: SimDuration::from_secs(10),
            sessions: vec![
                SessionPlan {
                    length: SimDuration::from_secs(100),
                    off_time: SimDuration::from_secs(50),
                    cpu_gops: 1.0,
                },
                SessionPlan {
                    length: SimDuration::from_secs(200),
                    off_time: SimDuration::from_secs(9),
                    cpu_gops: 2.0,
                },
            ],
        };
        assert_eq!(
            script.session_bounds(0),
            (SimDuration::from_secs(10), SimDuration::from_secs(110))
        );
        assert_eq!(
            script.session_bounds(1),
            (SimDuration::from_secs(160), SimDuration::from_secs(360))
        );
    }

    #[test]
    fn peer_starts_unknown_with_a_stable_identity() {
        let cfg = LifecycleConfig {
            brokers: vec![NodeId(0)],
            script: LifecycleScript {
                arrival: SimDuration::ZERO,
                sessions: vec![SessionPlan {
                    length: SimDuration::from_secs(60),
                    off_time: SimDuration::ZERO,
                    cpu_gops: 1.0,
                }],
            },
            accepts_tasks: true,
            failover: None,
        };
        let p = LifecyclePeer::new(cfg.clone(), 7);
        let q = LifecyclePeer::new(cfg, 7);
        assert_eq!(p.state(), LifecycleState::Unknown);
        assert_eq!(p.peer_id(), q.peer_id(), "identity is seed-derived");
        assert_eq!(p.broker(), NodeId(0));
    }

    #[test]
    fn home_preference_walks_and_wraps() {
        let cfg = LifecycleConfig {
            brokers: vec![NodeId(4), NodeId(9), NodeId(2)],
            script: LifecycleScript {
                arrival: SimDuration::ZERO,
                sessions: vec![SessionPlan {
                    length: SimDuration::from_secs(60),
                    off_time: SimDuration::ZERO,
                    cpu_gops: 1.0,
                }],
            },
            accepts_tasks: false,
            failover: Some(FailoverPolicy::default()),
        };
        let mut p = LifecyclePeer::new(cfg, 3);
        assert_eq!(p.broker(), NodeId(4));
        p.home_idx += 1;
        assert_eq!(p.broker(), NodeId(9));
        p.home_idx += 2;
        assert_eq!(p.broker(), NodeId(4), "preference list wraps");
    }
}
