//! Property-based tests for the overlay's protocol invariants.

use netsim::time::{SimDuration, SimTime};
use overlay::filetransfer::{split_parts, FileMeta, OutboundTransfer, TransferPhase};
use overlay::id::{ContentId, IdGenerator, TransferId};
use overlay::stats::{PeerStats, QueueGauge, RatioCounter, WindowedRatio};
use proptest::prelude::*;

fn outbound(size: u64, parts: u32) -> OutboundTransfer {
    let mut g = IdGenerator::new(1);
    OutboundTransfer::new(
        TransferId::generate(&mut g),
        FileMeta {
            content: ContentId::generate(&mut g),
            name: "f".into(),
            size_bytes: size,
        },
        netsim::node::NodeId(1),
        parts,
        SimTime::ZERO,
    )
}

proptest! {
    /// Part splitting conserves every byte and never emits empty parts.
    #[test]
    fn split_parts_conserves_bytes(size in 0u64..1_000_000_000, parts in 0u32..200) {
        let split = split_parts(size, parts);
        prop_assert_eq!(split.iter().sum::<u64>(), size);
        if size > 0 {
            prop_assert!(split.iter().all(|&p| p > 0));
            prop_assert!(split.len() as u64 <= size.max(1));
            prop_assert!(split.len() <= parts.max(1) as usize);
        }
    }

    /// Part sizes are balanced: max − min ≤ the remainder bound.
    #[test]
    fn split_parts_balanced(size in 1u64..1_000_000_000, parts in 1u32..100) {
        let split = split_parts(size, parts);
        let min = *split.iter().min().unwrap();
        let max = *split.iter().max().unwrap();
        prop_assert!(max - min <= parts as u64, "min {min} max {max}");
    }

    /// The stop-and-wait sender walks every part exactly once no matter how
    /// confirms are interleaved with stale/duplicate ones.
    #[test]
    fn stop_and_wait_sender_is_robust(
        size in 1u64..100_000_000,
        parts in 1u32..64,
        noise in prop::collection::vec(0u32..64, 0..32),
    ) {
        let mut t = outbound(size, parts);
        let first = t.on_petition_ack(true).expect("accepted");
        let mut sent = vec![first];
        let mut confirmed = 0u32;
        let mut noise_iter = noise.into_iter();
        while !t.is_complete() {
            // Interleave a piece of noise (stale confirm) before the real one.
            if let Some(bogus) = noise_iter.next() {
                if bogus != confirmed {
                    prop_assert_eq!(t.on_part_confirm(bogus), None);
                }
            }
            match t.on_part_confirm(confirmed) {
                Some(next) => {
                    sent.push(next);
                    confirmed += 1;
                }
                None => {
                    prop_assert!(t.is_complete());
                    break;
                }
            }
        }
        // All parts sent once, in order, conserving bytes.
        let total: u64 = sent.iter().map(|(_, s)| s).sum();
        prop_assert_eq!(total, size);
        for (i, (idx, _)) in sent.iter().enumerate() {
            prop_assert_eq!(*idx, i as u32);
        }
        prop_assert_eq!(t.phase, TransferPhase::Complete);
    }

    /// Ratio counters stay within [0, 100].
    #[test]
    fn ratio_counter_bounded(outcomes in prop::collection::vec(any::<bool>(), 0..500)) {
        let mut r = RatioCounter::default();
        for o in &outcomes {
            r.record(*o);
        }
        match r.percent() {
            None => prop_assert!(outcomes.is_empty()),
            Some(p) => prop_assert!((0.0..=100.0).contains(&p)),
        }
    }

    /// The time-weighted queue average always lies between the minimum and
    /// maximum lengths ever set.
    #[test]
    fn queue_gauge_average_bounded(lens in prop::collection::vec(0u32..50, 1..50)) {
        let mut g = QueueGauge::new(SimTime::ZERO);
        let mut t = SimTime::ZERO;
        for &l in &lens {
            g.set(t, l);
            t += SimDuration::from_secs(10);
        }
        let avg = g.average(t);
        let lo = *lens.iter().min().unwrap() as f64;
        let hi = *lens.iter().max().unwrap() as f64;
        // The initial zero-length span counts too.
        prop_assert!(avg >= 0.0 && avg <= hi, "avg {avg} not in [0, {hi}] (lo {lo})");
    }

    /// Windowed ratios never report out-of-range percentages, regardless of
    /// how events scatter across hours.
    #[test]
    fn windowed_ratio_bounded(
        events in prop::collection::vec((0u64..200_000u64, any::<bool>()), 0..200),
        k in 1usize..48,
    ) {
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| e.0);
        let mut w = WindowedRatio::new(48);
        let mut last = 0;
        for (secs, ok) in &sorted {
            w.record(SimTime::ZERO + SimDuration::from_secs(*secs), *ok);
            last = *secs;
        }
        if let Some(p) = w.percent_last_hours(SimTime::ZERO + SimDuration::from_secs(last), k) {
            prop_assert!((0.0..=100.0).contains(&p));
        }
    }

    /// Snapshots never panic and every criterion is readable for arbitrary
    /// interleavings of stat events.
    #[test]
    fn snapshots_always_complete(
        msgs in prop::collection::vec(any::<bool>(), 0..50),
        offers in prop::collection::vec(any::<bool>(), 0..50),
        files in prop::collection::vec(any::<bool>(), 0..50),
    ) {
        let mut s = PeerStats::new(SimTime::ZERO, 1.0);
        let mut t = SimTime::ZERO;
        for &m in &msgs {
            t += SimDuration::from_secs(30);
            s.record_message(t, m);
        }
        for &o in &offers {
            s.record_task_offer(o);
        }
        for &f in &files {
            s.record_file_send(f);
        }
        let snap = s.snapshot(t, 24);
        for c in overlay::stats::Criterion::ALL {
            if let Some(v) = snap.value(c) {
                prop_assert!(v.is_finite());
            }
        }
    }
}
