//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the real criterion cannot
//! be fetched. This crate vendors the subset of its API that the workspace's
//! benches use — `Criterion`, `BenchmarkGroup`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — backed by a simple wall-clock runner: each bench is warmed up
//! once, then timed over a small time budget, and the mean ns/iter is printed.
//!
//! It does no statistical analysis, outlier rejection, or HTML reporting.
//! `sample_size`/`measurement_time` are accepted and loosely honored (the
//! time budget is capped so `cargo bench` stays fast). Set
//! `CRITERION_SHIM_BUDGET_MS` to change the per-bench budget (default 200).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200u64);
    Duration::from_millis(ms)
}

/// Identifies a bench within a group, e.g. `push_pop/1024`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("push_pop", 1024)` → `push_pop/1024`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// `BenchmarkId::from_parameter(1024)` → `1024`.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to bench closures; [`Bencher::iter`] runs and times the routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the harness's time budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up (and a guaranteed single execution even if the clock is coarse).
        black_box(routine());
        let budget = budget();
        let start = Instant::now();
        let mut iters = 1u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

fn run_one(full_name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let ns = b.total.as_nanos() as f64 / b.iters as f64;
        println!(
            "bench {full_name:<60} {ns:>14.1} ns/iter ({} iters)",
            b.iters
        );
    } else {
        println!("bench {full_name:<60} (no measurement)");
    }
}

/// A named collection of related benches.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's runner is time-budgeted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim caps the per-bench budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs `f` with a borrowed input under `id` within this group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Group teardown; a no-op in the shim.
    pub fn finish(self) {}
}

/// The bench harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a harness with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Opens a named bench group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a standalone bench.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.to_string(), f);
        self
    }
}

/// Mirrors criterion's group macro (simple `(name, fn, ...)` form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors criterion's main macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_iterations() {
        std::env::set_var("CRITERION_SHIM_BUDGET_MS", "1");
        let mut c = Criterion::new();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.sample_size(10).measurement_time(Duration::from_secs(1));
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.bench_function(BenchmarkId::from_parameter("p"), |b| {
            b.iter(|| black_box(0))
        });
        g.finish();
    }
}
